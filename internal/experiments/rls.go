package experiments

import (
	"mute/internal/anc"
	"mute/internal/audio"
	"mute/internal/dsp"
)

// AblationRLS compares NLMS against RLS — the "enhanced filtering method
// known to converge faster" the paper points to for head mobility
// (Section 6) — on a system-identification task whose channel flips
// mid-run, mimicking an abrupt head movement. The figure reports the
// misalignment (dB) over time for both algorithms.
func AblationRLS(c Config) (*Figure, error) {
	c = c.Defaults()
	h1 := []float64{0.8, 0.2, -0.1}
	h2 := []float64{-0.4, 0.6, 0.15}
	const taps = 8
	const total = 12000
	const flip = total / 2
	rng := audio.NewRNG(c.Seed)
	ch1 := dsp.NewStreamConvolver(h1)
	ch2 := dsp.NewStreamConvolver(h2)
	// Colored (speech-like) excitation: this is where gradient methods
	// crawl — their convergence is governed by the input eigenvalue
	// spread — while RLS whitens internally.
	colorTaps, err := dsp.LowPassFIR(1200, c.SampleRate, 31, dsp.Hamming)
	if err != nil {
		return nil, err
	}
	color := dsp.NewStreamConvolver(colorTaps)

	nlms, err := anc.NewAdaptiveFilter(anc.LMSConfig{Taps: taps, Mu: 0.3, Normalized: true})
	if err != nil {
		return nil, err
	}
	rls, err := anc.NewRLS(anc.RLSConfig{Taps: taps, Lambda: 0.995, Delta: 0.01})
	if err != nil {
		return nil, err
	}

	fig := &Figure{
		ID:     "ablation-rls",
		Title:  "NLMS vs RLS tracking an abrupt channel change (head-mobility stand-in)",
		XLabel: "Sample",
		YLabel: "Misalignment (dB)",
	}
	sN := Series{Name: "NLMS"}
	sR := Series{Name: "RLS"}
	const stride = 200
	for i := 0; i < total; i++ {
		x := color.Process(rng.Uniform()) * 1.5
		var d float64
		href := h1
		if i < flip {
			d = ch1.Process(x)
			ch2.Process(x) // keep channel states aligned
		} else {
			ch1.Process(x)
			d = ch2.Process(x)
			href = h2
		}
		nlms.Step(x, d)
		rls.Step(x, d)
		if i%stride == 0 {
			sN.X = append(sN.X, float64(i))
			sN.Y = append(sN.Y, dsp.DB(nlms.Misalignment(href)+dsp.EpsilonPower))
			sR.X = append(sR.X, float64(i))
			sR.Y = append(sR.Y, dsp.DB(rls.Misalignment(href)+dsp.EpsilonPower))
		}
	}
	fig.Series = []Series{sN, sR}
	// Recovery time after the flip: samples until misalignment < -20 dB.
	recover := func(s Series) float64 {
		for i := range s.X {
			if s.X[i] > float64(flip) && s.Y[i] < -20 {
				return s.X[i] - float64(flip)
			}
		}
		return -1
	}
	fig.Notes = append(fig.Notes,
		note("recovery to -20 dB misalignment after the channel flip: NLMS %g samples, RLS %g samples (paper: faster-converging filters mitigate head mobility)",
			recover(sN), recover(sR)))
	return fig, nil
}
