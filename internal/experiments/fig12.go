package experiments

import (
	"mute/internal/audio"
	"mute/internal/sim"
)

// Fig12 reproduces the overall-cancellation comparison (Figure 12): the
// cancellation-vs-frequency curves of Bose_Active, Bose_Overall,
// MUTE_Hollow and MUTE+Passive under wide-band white noise, plus the
// section's headline band averages (MUTE vs Bose within 1 kHz, the 0.9 dB
// Bose_Overall edge over MUTE_Hollow, and the 8.9 dB MUTE+Passive win).
func Fig12(c Config) (*Figure, error) {
	c = c.Defaults()
	gen := func() audio.Generator { return audio.NewWhiteNoise(c.Seed, c.SampleRate, c.NoiseAmp) }
	fig := &Figure{
		ID:     "fig12",
		Title:  "Overall noise cancellation, wide-band white noise",
		XLabel: "Frequency (Hz)",
		YLabel: "Cancellation (dB)",
	}
	type schemeSpec struct {
		scheme sim.Scheme
		name   string
		active bool // report active-only gain (Bose_Active)
	}
	specs := []schemeSpec{
		{sim.BoseActive, "Bose_Active", true},
		{sim.BoseOverall, "Bose_Overall", false},
		{sim.MUTEHollow, "MUTE_Hollow", false},
		{sim.MUTEPassive, "MUTE+Passive", false},
	}
	// The four schemes are independent simulations of the same scene; fan
	// them out and assemble in spec order so output is identical to the
	// sequential path. Telemetry follows the same discipline: one child
	// registry per scheme, merged in spec order afterwards.
	outs := make([]Series, len(specs))
	kids := telemetryChildren(c.Telemetry, len(specs))
	err := parallelFor(c.Workers, len(specs), func(i int) error {
		spec := specs[i]
		r, err := runScheme(c, spec.scheme, gen, func(p *sim.Params) {
			p.Telemetry = childTelemetry(kids, i)
		})
		if err != nil {
			return err
		}
		var s Series
		if spec.active {
			s, err = activeSeries(spec.name, r, c.Bands)
		} else {
			s, err = spectrumSeries(spec.name, r, c.Bands)
		}
		if err != nil {
			return err
		}
		outs[i] = s
		return nil
	})
	if err != nil {
		return nil, err
	}
	mergeTelemetry(c.Telemetry, kids)
	results := map[string]Series{}
	for i, spec := range specs {
		fig.Series = append(fig.Series, outs[i])
		results[spec.name] = outs[i]
	}
	muteLow := bandAvg(results["MUTE_Hollow"], 0, 1000)
	boseActiveLow := bandAvg(results["Bose_Active"], 0, 1000)
	muteFull := bandAvg(results["MUTE_Hollow"], 0, 4000)
	boseFull := bandAvg(results["Bose_Overall"], 0, 4000)
	mutePassiveFull := bandAvg(results["MUTE+Passive"], 0, 4000)
	boseActiveHigh := bandAvg(results["Bose_Active"], 1000, 4000)
	fig.Notes = append(fig.Notes,
		note("within 1 kHz: MUTE_Hollow %.1f dB vs Bose_Active %.1f dB (MUTE better by %.1f dB; paper: 6.7 dB)",
			muteLow, boseActiveLow, boseActiveLow-muteLow),
		note("full band: Bose_Overall %.1f dB vs MUTE_Hollow %.1f dB (Bose better by %.1f dB; paper: 0.9 dB)",
			boseFull, muteFull, muteFull-boseFull),
		note("full band: MUTE+Passive %.1f dB vs Bose_Overall %.1f dB (MUTE better by %.1f dB; paper: 8.9 dB)",
			mutePassiveFull, boseFull, boseFull-mutePassiveFull),
		note("Bose_Active above 1 kHz: %.1f dB (paper: ≈0, active cancellation absent)", boseActiveHigh),
	)
	return fig, nil
}
