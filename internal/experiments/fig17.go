package experiments

import (
	"mute/internal/acoustics"
	"mute/internal/audio"
	"mute/internal/core"
	"mute/internal/dsp"
	"mute/internal/metrics"
	"mute/internal/sim"
)

// Fig17 reproduces the predictive-profiling experiment (Figure 17):
// wide-band background noise plays continuously from one speaker while
// intermittent human voice (with pauses) plays from another. LANC runs
// once with profile switching ON and once OFF; the figure reports the
// additional cancellation that switching provides (paper: ≈3 dB average).
func Fig17(c Config) (*Figure, error) {
	c = c.Defaults()
	// The dominant intermittent talker stands at the door (the relay's
	// side, as in Figure 1); the constant wide-band background plays,
	// weaker, from mid-room. The two regimes — speech+background vs
	// background alone — then have clearly different optimal filters,
	// which is what the cached-filter switch exploits.
	makeScene := func() sim.Scene {
		speech := audio.NewSentenceSpeech(c.Seed+6, audio.MaleVoice, c.SampleRate, c.NoiseAmp*3)
		scene := sim.DefaultScene(speech)
		scene.Sources = append(scene.Sources, sim.Source{
			Pos: acoustics.Point{X: 2.5, Y: 3.4, Z: 1.5},
			Gen: audio.NewWhiteNoise(c.Seed+5, c.SampleRate, c.NoiseAmp*0.25),
		})
		return scene
	}
	run := func(profiling bool) (*sim.Result, error) {
		p := sim.DefaultParams(makeScene())
		p.Duration = c.Duration * 2 // regimes alternate at seconds scale; give the caches time
		p.Seed = c.Seed
		p.UseFMLink = c.UseFMLink
		p.Mu = 0.02
		p.Profiling = profiling
		p.ProfileWindow = 1024
		p.ProfileHop = 256
		p.ProfileThreshold = 0.45
		p.MaxProfiles = 4
		return sim.Run(p, sim.MUTEHollow)
	}
	// The profiling-on and profiling-off arms are independent; run both at
	// once (each builds its own scene from explicit seeds).
	arms := make([]*sim.Result, 2)
	err := parallelFor(c.Workers, 2, func(i int) error {
		r, err := run(i == 0)
		if err != nil {
			return err
		}
		arms[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	rOn, rOff := arms[0], arms[1]
	// Additional cancellation = PSD(on)/PSD(off) of the steady-state
	// residuals (the first half covers initial convergence and cache
	// warm-up for both arms).
	cs, err := metrics.NewCancellationSpectrum(
		sim.SteadyState(rOff.On), sim.SteadyState(rOn.On), c.SampleRate, 1024)
	if err != nil {
		return nil, err
	}
	x, y := cs.BandTable(c.Bands, c.SampleRate/2)
	fig := &Figure{
		ID:     "fig17",
		Title:  "Additional cancellation from lookahead-enabled filter switching",
		XLabel: "Frequency (Hz)",
		YLabel: "Additional Cancellation (dB)",
		Series: []Series{{Name: "Profiling gain", X: x, Y: y}},
	}
	avg := bandAvg(fig.Series[0], 0, 4000)
	abGain, err := alternatingSourceGain(c)
	if err != nil {
		return nil, err
	}
	fig.Notes = append(fig.Notes,
		note("average additional cancellation %.1f dB (paper: ≈3 dB); %d predictive filter switches performed", avg, rOn.Switches),
		note("controlled alternating-source upper bound: switching adds %.1f dB (distinct stable regimes, slow adaptation)", abGain),
		note("the scene-based gain is smaller than the paper's because our baseline uses NLMS, which re-converges faster than the prototype's LMS"),
	)
	return fig, nil
}

// alternatingSourceGain isolates the cache-switch mechanism: two sources
// with clearly different channels alternate strictly (machine hum vs white
// noise), so the per-regime optimal filters are distinct and the classifier
// is stable. It returns the additional cancellation (positive dB) profiling
// provides over a single adaptive filter.
func alternatingSourceGain(c Config) (float64, error) {
	fs := c.SampleRate
	const nonCausal = 12
	hnrA := []float64{1.0, 0.3}
	hneA := []float64{0, 0, 0, 0, 0.8, 0.2}
	hnrB := []float64{0.6, -0.5, 0.2}
	hneB := []float64{0, 0, 0, 0, -0.3, 0.7, 0.25}
	hse := []float64{0.8, 0.25, 0.05}
	run := func(prof bool) (float64, error) {
		cfg := core.Config{
			NonCausalTaps: nonCausal, CausalTaps: 24, Mu: 0.02, Normalized: true,
			SecondaryPath: hse,
			Profiling:     prof, SampleRate: fs,
			ProfileWindow: 512, ProfileHop: 128, ProfileThreshold: 0.5, MaxProfiles: 4,
		}
		l, err := core.New(cfg)
		if err != nil {
			return 0, err
		}
		refA := dsp.NewStreamConvolver(hnrA)
		earA := dsp.NewStreamConvolver(hneA)
		refB := dsp.NewStreamConvolver(hnrB)
		earB := dsp.NewStreamConvolver(hneB)
		sec := dsp.NewStreamConvolver(hse)
		total := int(2 * c.Duration * fs)
		seg := int(1.5 * fs)
		nsA := audio.Render(audio.NewMachineHum(c.Seed, 150, fs, 0.6, 6), total+nonCausal+1)
		nsB := audio.Render(audio.NewWhiteNoise(c.Seed+1, fs, 0.5), total+nonCausal+1)
		gate := func(i int) bool { return (i/seg)%2 == 0 }
		var res, open float64
		e := 0.0
		for i := 0; i < total; i++ {
			var xA, xB float64
			if gate(i + nonCausal) {
				xA = nsA[i+nonCausal]
			} else {
				xB = nsB[i+nonCausal]
			}
			ref := refA.Process(xA) + refB.Process(xB)
			l.Adapt(e)
			l.Push(ref)
			a := l.AntiNoise()
			var dA, dB float64
			if gate(i) {
				dA = nsA[i]
			} else {
				dB = nsB[i]
			}
			d := earA.Process(dA) + earB.Process(dB)
			e = d + sec.Process(a)
			if i > total/2 {
				res += e * e
				open += d * d
			}
		}
		return dsp.DB(res / (open + dsp.EpsilonPower)), nil
	}
	var on, off float64
	err := parallelFor(c.Workers, 2, func(i int) error {
		db, err := run(i == 0)
		if err != nil {
			return err
		}
		if i == 0 {
			on = db
		} else {
			off = db
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return off - on, nil
}
