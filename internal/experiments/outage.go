package experiments

import (
	"fmt"
	"math"

	"mute/internal/audio"
	"mute/internal/core"
	"mute/internal/dsp"
	"mute/internal/headphone"
	"mute/internal/sim"
	"mute/internal/stream"
	"mute/internal/supervisor"
	"mute/internal/telemetry"
)

// outagePolicy is one resilience strategy under test.
type outagePolicy int

const (
	// outageNaive adapts straight through the concealment zeros.
	outageNaive outagePolicy = iota
	// outageFreeze holds the weights while concealed samples sit in the
	// gradient window (the loss experiment's best single-relay policy).
	outageFreeze
	// outageSupervised runs the degradation ladder: freeze plus demotion
	// to the local causal fallback when the link dies outright.
	outageSupervised
	// outageFailover runs two relays and switches streams when the
	// active relay's link health collapses.
	outageFailover
)

// OutageSweep measures cancellation against scheduled relay outages: the
// relay reboots mid-run and stays dark for the swept duration. Packet loss
// corrupts some reference samples; an outage removes all of them, which is
// the regime the degradation ladder and multi-relay failover exist for.
//
// Four policies share identical noise, link seeds, and outage schedules
// per cell: naive adaptation, concealment-freeze, the supervised ladder
// (freeze + warm-started local fallback + reacquisition probes), and
// two-relay failover (the second relay's link stays up through the
// outage). Every link also carries 2% background burst loss, because a
// relay that can reboot is not otherwise pristine. Scoring covers the
// converged second half of the run — which contains the outage and the
// recovery — so the number reflects the total damage each policy admits,
// not just steady state.
func OutageSweep(c Config) (*Figure, error) {
	c = c.Defaults()
	// Outage durations as fractions of the run so the sweep scales with
	// -duration; at the default 12 s these are 0.25 s … 3 s.
	fracs := []float64{1.0 / 48, 1.0 / 24, 1.0 / 12, 1.0 / 6, 1.0 / 4}
	policies := []struct {
		name string
		p    outagePolicy
	}{
		{"naive", outageNaive},
		{"freeze", outageFreeze},
		{"supervised", outageSupervised},
		{"failover_2relay", outageFailover},
	}

	ys := make([]float64, len(policies)*len(fracs))
	reports := make([]*supervisor.Report, len(fracs))
	switches := make([]int, len(fracs))
	kids := telemetryChildren(c.Telemetry, len(ys))
	err := parallelFor(c.Workers, len(ys), func(i int) error {
		pol := policies[i/len(fracs)]
		di := i % len(fracs)
		// Paired seeds: every policy in one duration cell shares the
		// same noise and link randomness, so curves differ only by
		// policy and cells are deterministic for any worker count.
		cell := outageCell{
			cfg:       c,
			policy:    pol.p,
			frac:      fracs[di],
			bgLoss:    0.02, // light burst loss on every link, outage or not
			linkSeed:  c.Seed*2027 + uint64(di)*31,
			noiseSeed: c.Seed + uint64(di)*7,
		}
		db, rep, moves, err := cell.run(childTelemetry(kids, i))
		if err != nil {
			return err
		}
		ys[i] = db
		if pol.p == outageSupervised {
			reports[di] = rep
		}
		if pol.p == outageFailover {
			switches[di] = moves
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	mergeTelemetry(c.Telemetry, kids)

	fig := &Figure{
		ID:     "outage",
		Title:  "Cancellation vs relay outage duration (degradation ladder / failover)",
		XLabel: "outage duration (s)",
		YLabel: "residual vs no-ANC (dB)",
	}
	at := func(pi, di int) float64 { return ys[pi*len(fracs)+di] }
	for pi, pol := range policies {
		s := Series{Name: pol.name}
		for di, f := range fracs {
			s.X = append(s.X, f*c.Duration)
			s.Y = append(s.Y, at(pi, di))
		}
		fig.Series = append(fig.Series, s)
	}
	last := len(fracs) - 1
	fig.Notes = append(fig.Notes,
		note("%.2g s outage: supervised %.1f dB, failover %.1f dB vs naive %.1f dB",
			fracs[last]*c.Duration, at(2, last), at(3, last), at(0, last)),
		note("failover switched relays %d times over the longest outage", switches[last]))
	if rep := reports[last]; rep != nil {
		var total int64
		for _, s := range rep.TimeInState {
			total += s
		}
		breakdown := ""
		for st, samples := range rep.TimeInState {
			if samples == 0 {
				continue
			}
			if breakdown != "" {
				breakdown += ", "
			}
			breakdown += fmt.Sprintf("%s %.1f%%", supervisor.State(st), 100*float64(samples)/float64(total))
		}
		fig.Notes = append(fig.Notes,
			note("supervised time-in-state over the longest outage: %s (%d transitions, %d probes)",
				breakdown, len(rep.Transitions), rep.Probes))
	}
	return fig, nil
}

// outageCell is one (policy, outage duration) run.
type outageCell struct {
	cfg       Config
	policy    outagePolicy
	frac      float64
	bgLoss    float64 // background burst-loss rate on every relay link
	linkSeed  uint64
	noiseSeed uint64
}

// run scores the cell: residual power at the ear versus the uncancelled
// primary, in dB over the second half of the run (which contains the
// outage and the recovery; negative is better, 0 dB is the passive floor).
// It reuses the loss experiment's synthetic deployment — large geometric
// lookahead, 5 ms frames, one priming frame — with the loss replaced by a
// single scheduled outage, so all four policies are scored on the same
// acoustic leg.
func (oc outageCell) run(reg *telemetry.Registry) (float64, *supervisor.Report, int, error) {
	const (
		frameN = 40 // 5 ms frames at 8 kHz
		prime  = 1  // one priming frame of playout buffer
		nTaps  = 32
		causal = 128
		slack  = 4 // lookahead margin beyond the non-causal taps
	)
	c := oc.cfg
	n := int(c.Duration * c.SampleRate)
	startSlot := uint64(0.55*c.Duration*c.SampleRate) / frameN
	durSlots := uint64(math.Max(1, math.Round(oc.frac*c.Duration*c.SampleRate/frameN)))
	// The paper's outage-sensitive deployments are low-frequency machine
	// noise (AC, compressor); band-limiting the source to 800 Hz keeps
	// the comparison inside the band every policy can actually reach —
	// the causal fallback's band-limiter rolls off around 1 kHz, so
	// white noise would hide its contribution behind energy nobody
	// cancels.
	src, err := audio.NewBandLimitedNoise(oc.noiseSeed, c.SampleRate, c.NoiseAmp, 800)
	if err != nil {
		return 0, nil, 0, err
	}
	clean := audio.Render(src, n)

	packetize := func(seed uint64, outage bool) ([]float64, []bool, error) {
		link := stream.LossParams{Seed: seed, Loss: oc.bgLoss}
		if oc.bgLoss > 0 {
			link.MeanBurst = 4
		}
		if outage {
			link.Outages = []stream.Outage{{StartSlot: startSlot, DurationSlots: durSlots}}
		}
		recv, mask, _, err := sim.PacketizeReference(clean, sim.LossTransport{
			Link: link, FrameSamples: frameN, PrimeFrames: prime,
		})
		return recv, mask, err
	}
	recv0, mask0, err := packetize(oc.linkSeed, true)
	if err != nil {
		return 0, nil, 0, err
	}

	secPath := []float64{0.85, 0.22, 0.06}
	lanc, err := core.New(core.Config{
		NonCausalTaps: nTaps,
		CausalTaps:    causal,
		Mu:            0.1,
		Normalized:    true,
		Leak:          0.0005,
		SecondaryPath: secPath,
		LossAware:     oc.policy != outageNaive,
	})
	if err != nil {
		return 0, nil, 0, err
	}

	var sup *supervisor.Supervisor
	if oc.policy == outageSupervised {
		hcfg := headphone.DefaultConfig(c.SampleRate, secPath)
		hcfg.PipelineDelaySamples = 0
		fb, err := headphone.NewANC(hcfg)
		if err != nil {
			return 0, nil, 0, err
		}
		// Demotion thresholds sit above the priming transient's EWMA peak
		// so ladder moves are attributable to link health, not startup;
		// StarvationRun gets margin over a background loss burst (4
		// frames = 160 samples) so only a genuinely dead link — 50 ms of
		// consecutive concealment — forces the FALLBACK demotion.
		sup, err = supervisor.New(supervisor.Config{
			DegradeThreshold: 0.2, FallbackThreshold: 0.5, StarvationRun: 400,
		}, lanc, fb)
		if err != nil {
			return 0, nil, 0, err
		}
	}
	var fo *supervisor.Failover
	var recv1 []float64
	var mask1 []bool
	if oc.policy == outageFailover {
		// The second relay hears the same source over an independent,
		// outage-free link: the redundancy the failover is meant to buy.
		recv1, mask1, err = packetize(oc.linkSeed+13, false)
		if err != nil {
			return 0, nil, 0, err
		}
		fo, err = supervisor.NewFailover(supervisor.FailoverConfig{Relays: 2}, nil)
		if err != nil {
			return 0, nil, 0, err
		}
	}

	earCh := dsp.NewStreamConvolver([]float64{0.8, 0.25, 0.1, 0.05})
	secCh := dsp.NewStreamConvolver(secPath)
	const shift = nTaps + slack
	steps := n - shift
	var resPow, priPow float64
	e := 0.0
	fwd := make([]float64, 2)
	real2 := make([]bool, 2)
	for t := 0; t < steps; t++ {
		x, real := recv0[t+shift], mask0[t+shift]
		d := earCh.Process(clean[t])
		var a float64
		switch oc.policy {
		case outageSupervised:
			a = sup.Step(x, d, e, real)
		case outageFailover:
			fwd[0], fwd[1] = x, recv1[t+shift]
			real2[0], real2[1] = real, mask1[t+shift]
			idx, err := fo.Step(d, fwd, real2)
			if err != nil {
				return 0, nil, 0, err
			}
			a = lanc.StepMasked(fwd[idx], e, real2[idx])
		default:
			a = lanc.StepMasked(x, e, real)
		}
		e = d + secCh.Process(a)
		if t >= steps/2 {
			resPow += e * e
			priPow += d * d
		}
	}
	db := dsp.DB((resPow + dsp.EpsilonPower) / (priPow + dsp.EpsilonPower))

	var rep *supervisor.Report
	var moves int
	if sup != nil {
		r := sup.Report()
		rep = &r
	}
	if fo != nil {
		moves = fo.Switches()
	}
	if reg != nil {
		// Observation only: the run above never branches on reg, so the
		// returned dB is byte-identical with telemetry on or off.
		reg.Counter("outage.runs").Inc()
		reg.Counter("outage.samples").Add(int64(steps))
		if rep != nil {
			reg.Counter("supervisor.transitions").Add(int64(len(rep.Transitions)))
			reg.Counter("supervisor.probes").Add(int64(rep.Probes))
			reg.Counter("supervisor.warm_starts").Add(int64(rep.WarmStarts))
			reg.Counter("supervisor.tainted_suppressed").Add(rep.TaintedSuppressed)
			for st, samples := range rep.TimeInState {
				reg.Counter("supervisor.time_in_" + supervisor.State(st).String()).Add(samples)
			}
		}
		if fo != nil {
			reg.Counter("failover.switches").Add(int64(moves))
		}
		reg.Histogram("outage.cell_residual_db", telemetry.HistogramOpts{Lo: 1e-2, Ratio: 2, Buckets: 16}).Observe(-db)
	}
	return db, rep, moves, nil
}
