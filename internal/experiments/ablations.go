package experiments

import (
	"math"

	"mute/internal/audio"
	"mute/internal/rf"
	"mute/internal/sim"
)

// AblationTaps sweeps LANC's non-causal tap count N with everything else
// fixed — the essence of the lookahead advantage, isolated from geometry.
func AblationTaps(c Config) (*Figure, error) {
	c = c.Defaults()
	gen := func() audio.Generator { return audio.NewWhiteNoise(c.Seed, c.SampleRate, c.NoiseAmp) }
	fig := &Figure{
		ID:     "ablation-taps",
		Title:  "Cancellation vs non-causal tap count N (fixed geometry)",
		XLabel: "Non-causal taps N",
		YLabel: "Full-band cancellation (dB)",
	}
	taps := []int{1, 2, 4, 8, 16, 32, 64}
	ys := make([]float64, len(taps))
	err := parallelFor(c.Workers, len(taps), func(i int) error {
		r, err := runScheme(c, sim.MUTEHollow, gen, func(p *sim.Params) {
			p.MaxNonCausalTaps = taps[i]
		})
		if err != nil {
			return err
		}
		db, err := r.CancellationDB(50, 4000)
		if err != nil {
			return err
		}
		ys[i] = db
		return nil
	})
	if err != nil {
		return nil, err
	}
	s := Series{Name: "MUTE_Hollow"}
	for i, n := range taps {
		s.X = append(s.X, float64(n))
		s.Y = append(s.Y, ys[i])
	}
	fig.Series = []Series{s}
	fig.Notes = append(fig.Notes,
		note("cancellation at N=1: %.1f dB, at N=64: %.1f dB (diminishing returns once the inverse filter is covered)",
			s.Y[0], s.Y[len(s.Y)-1]))
	return fig, nil
}

// AblationFMSNR sweeps the FM channel SNR to show how link quality feeds
// through demodulated-audio quality into cancellation depth.
func AblationFMSNR(c Config) (*Figure, error) {
	c = c.Defaults()
	gen := func() audio.Generator { return audio.NewWhiteNoise(c.Seed, c.SampleRate, c.NoiseAmp) }
	fig := &Figure{
		ID:     "ablation-fmsnr",
		Title:  "Cancellation vs FM channel SNR",
		XLabel: "Channel SNR (dB)",
		YLabel: "Full-band cancellation (dB)",
	}
	snrs := []float64{10, 20, 30, 40, math.Inf(1)}
	ys := make([]float64, len(snrs))
	err := parallelFor(c.Workers, len(snrs), func(i int) error {
		r, err := runScheme(c, sim.MUTEHollow, gen, func(p *sim.Params) {
			p.UseFMLink = true
			p.Channel = rf.ChannelParams{SNRdB: snrs[i], CFOHz: 500, Gain: 1, Seed: c.Seed}
		})
		if err != nil {
			return err
		}
		db, err := r.CancellationDB(50, 4000)
		if err != nil {
			return err
		}
		ys[i] = db
		return nil
	})
	if err != nil {
		return nil, err
	}
	s := Series{Name: "MUTE_Hollow over FM"}
	for i, snr := range snrs {
		x := snr
		if math.IsInf(x, 1) {
			x = 60 // plot stand-in for a clean channel
		}
		s.X = append(s.X, x)
		s.Y = append(s.Y, ys[i])
	}
	fig.Series = []Series{s}
	fig.Notes = append(fig.Notes,
		note("cancellation at 10 dB SNR: %.1f dB vs clean channel: %.1f dB", s.Y[0], s.Y[len(s.Y)-1]))
	return fig, nil
}

// AblationNormalization compares NLMS (power-normalized) against plain
// LMS step sizes under the level swings of intermittent speech.
func AblationNormalization(c Config) (*Figure, error) {
	c = c.Defaults()
	gen := func() audio.Generator {
		return audio.NewSpeech(c.Seed+6, audio.MaleVoice, c.SampleRate, c.NoiseAmp*2)
	}
	fig := &Figure{
		ID:     "ablation-nlms",
		Title:  "Cancellation on intermittent speech (NLMS step normalization is always on in LANC; sweep µ)",
		XLabel: "mu",
		YLabel: "Full-band cancellation (dB)",
	}
	mus := []float64{0.02, 0.05, 0.1, 0.2, 0.4}
	ys := make([]float64, len(mus))
	err := parallelFor(c.Workers, len(mus), func(i int) error {
		r, err := runScheme(c, sim.MUTEHollow, gen, func(p *sim.Params) {
			p.Mu = mus[i]
		})
		if err != nil {
			return err
		}
		db, err := r.CancellationDB(50, 4000)
		if err != nil {
			return err
		}
		ys[i] = db
		return nil
	})
	if err != nil {
		return nil, err
	}
	s := Series{Name: "MUTE_Hollow"}
	for i, mu := range mus {
		s.X = append(s.X, mu)
		s.Y = append(s.Y, ys[i])
	}
	fig.Series = []Series{s}
	best := 0
	for i := range s.Y {
		if s.Y[i] < s.Y[best] {
			best = i
		}
	}
	fig.Notes = append(fig.Notes, note("best µ = %g (%.1f dB)", s.X[best], s.Y[best]))
	return fig, nil
}

// All runs every experiment in paper order; used by cmd/mutebench -fig all.
// Whole figures fan out across the worker pool on top of the intra-figure
// parallelism, so small figures fill the cores the big ones leave idle; the
// returned slice is always in paper order.
func All(c Config) ([]*Figure, error) {
	c = c.Defaults()
	type fn func(Config) (*Figure, error)
	fns := []fn{Fig8, Fig12, Fig13, Fig14, Fig15, Fig16, Fig17, Fig18, Fig19, LookaheadTable,
		AblationTaps, AblationFMSNR, AblationNormalization,
		Variants, Mobility, Contention, TrackerExperiment, MultiSource, AblationRLS,
		LossSweep, OutageSweep, DriftSweep, FdafSweep, MeshSweep}
	out := make([]*Figure, len(fns))
	err := parallelFor(c.Workers, len(fns), func(i int) error {
		fig, err := fns[i](c)
		if err != nil {
			return err
		}
		out[i] = fig
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ByID resolves an experiment by its figure id.
func ByID(id string) (func(Config) (*Figure, error), bool) {
	m := map[string]func(Config) (*Figure, error){
		"fig8":           Fig8,
		"fig12":          Fig12,
		"fig13":          Fig13,
		"fig14":          Fig14,
		"fig15":          Fig15,
		"fig16":          Fig16,
		"fig17":          Fig17,
		"fig18":          Fig18,
		"fig19":          Fig19,
		"lookahead":      LookaheadTable,
		"ablation-taps":  AblationTaps,
		"ablation-fmsnr": AblationFMSNR,
		"ablation-nlms":  AblationNormalization,
		"variants":       Variants,
		"mobility":       Mobility,
		"contention":     Contention,
		"tracker":        TrackerExperiment,
		"multisource":    MultiSource,
		"ablation-rls":   AblationRLS,
		"loss":           LossSweep,
		"outage":         OutageSweep,
		"drift":          DriftSweep,
		"fdaf":           FdafSweep,
		"mesh":           MeshSweep,
	}
	f, ok := m[id]
	return f, ok
}
