package experiments

import "testing"

func TestVariantsExperiment(t *testing.T) {
	fig, err := Variants(Config{Duration: 4})
	if err != nil {
		t.Fatal(err)
	}
	s := fig.Series[0]
	if len(s.Y) != 4 {
		t.Fatalf("variants should measure 4 configurations, got %d", len(s.Y))
	}
	for i, db := range s.Y {
		if db > -4 {
			t.Errorf("variant %d cancellation = %.1f dB, want < -4", i, db)
		}
	}
	if len(fig.Notes) != 4 {
		t.Error("variants should carry one note per configuration")
	}
}

func TestMobilityExperiment(t *testing.T) {
	fig, err := Mobility(Config{Duration: 4})
	if err != nil {
		t.Fatal(err)
	}
	s := fig.Series[0]
	if len(s.Y) != 4 {
		t.Fatalf("mobility should sweep 4 drifts, got %d", len(s.Y))
	}
	// The largest drift must not beat the static case.
	if s.Y[len(s.Y)-1] < s.Y[0]-0.5 {
		t.Errorf("1.2 m drift (%.1f dB) should not beat static (%.1f dB)", s.Y[len(s.Y)-1], s.Y[0])
	}
}

func TestContentionExperiment(t *testing.T) {
	fig, err := Contention(Config{})
	if err != nil {
		t.Fatal(err)
	}
	s := fig.Series[0]
	// Occupancy grows linearly with relays and stays small.
	for i := 1; i < len(s.Y); i++ {
		if s.Y[i] <= s.Y[i-1] {
			t.Error("occupancy should grow with relay count")
		}
	}
	if s.Y[len(s.Y)-1] > 0.05 {
		t.Errorf("64 relays occupy fraction %.3f, want < 5%%", s.Y[len(s.Y)-1])
	}
	if len(fig.Notes) < 2 {
		t.Error("contention should report occupancy and interference notes")
	}
}

func TestTrackerExperimentFollowsSource(t *testing.T) {
	fig, err := TrackerExperiment(Config{})
	if err != nil {
		t.Fatal(err)
	}
	expectLen := 4
	if len(fig.Series[0].Y) != expectLen {
		t.Fatalf("tracker should report %d segments", expectLen)
	}
	// By the end of each 2 s segment the association should match the
	// active source's relay: segment parity alternates 1, 2, 1, 2.
	want := []float64{1, 2, 1, 2}
	got := fig.Series[0].Y
	matches := 0
	for i := range want {
		if got[i] == want[i] {
			matches++
		}
	}
	if matches < 3 {
		t.Errorf("tracker matched %d/4 segments (%v), want >= 3", matches, got)
	}
}

func TestMultiSourceExperiment(t *testing.T) {
	fig, err := MultiSource(Config{Duration: 6})
	if err != nil {
		t.Fatal(err)
	}
	s := fig.Series[0]
	if len(s.Y) != 2 {
		t.Fatal("multisource should compare 2 configurations")
	}
	single, multi := s.Y[0], s.Y[1]
	if multi >= single-2 {
		t.Errorf("multi-reference (%.1f dB) should beat single (%.1f dB) by > 2 dB", multi, single)
	}
}

func TestAllRunsEveryExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("All() is minutes of simulation")
	}
	figs, err := All(Config{Duration: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 24 {
		t.Errorf("All returned %d figures, want 24", len(figs))
	}
	seen := map[string]bool{}
	for _, f := range figs {
		if f.ID == "" || seen[f.ID] {
			t.Errorf("bad or duplicate figure id %q", f.ID)
		}
		seen[f.ID] = true
	}
}

func TestFig8ConvergenceTimelines(t *testing.T) {
	fig, err := Fig8(Config{Duration: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("fig8 should have 3 timelines, got %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.X) < 10 {
			t.Fatalf("%s: timeline too short", s.Name)
		}
	}
	// Continuous noise should end up with a lower (deeper) residual than
	// it started: convergence.
	a := fig.Series[0]
	if a.Y[len(a.Y)-1] >= a.Y[0] {
		t.Errorf("continuous-noise residual should decay: start %.1f end %.1f", a.Y[0], a.Y[len(a.Y)-1])
	}
}

func TestAblationRLSFasterRecovery(t *testing.T) {
	fig, err := AblationRLS(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatal("RLS ablation should have 2 series")
	}
	// RLS should end converged after the flip.
	r := fig.Series[1]
	if last := r.Y[len(r.Y)-1]; last > -20 {
		t.Errorf("RLS final misalignment = %.1f dB, want < -20", last)
	}
}
