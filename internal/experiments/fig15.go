package experiments

import (
	"mute/internal/audio"
	"mute/internal/metrics"
	"mute/internal/sim"
)

// Fig15 reproduces the human-experience study (Figure 15): five listeners
// rate MUTE+Passive against Bose_Overall on music and voice noise, 1–5
// stars. The paper's listeners are replaced by a deterministic
// psychoacoustic rating model (A-weighted residual loudness → stars with
// per-listener bias); the claim to preserve is ordinal — every listener
// rates MUTE+Passive above Bose_Overall on both sound types.
func Fig15(c Config) (*Figure, error) {
	c = c.Defaults()
	fig := &Figure{
		ID:     "fig15",
		Title:  "Simulated listener ratings, MUTE+Passive vs Bose_Overall",
		XLabel: "User ID",
		YLabel: "Score (stars)",
	}
	const listeners = 5
	sounds := []struct {
		Name string
		Gen  func() audio.Generator
	}{
		{"Music", func() audio.Generator { return audio.NewMusic(c.Seed+40, c.SampleRate, c.NoiseAmp, 3) }},
		{"Voice", func() audio.Generator {
			return audio.NewContinuousSpeech(c.Seed+10, audio.MaleVoice, c.SampleRate, c.NoiseAmp*1.6)
		}},
	}
	// Fan out the four underlying simulations (2 sounds × 2 schemes); the
	// deterministic rating model then runs sequentially on the results.
	schemes := []sim.Scheme{sim.MUTEPassive, sim.BoseOverall}
	results := make([]*sim.Result, len(sounds)*len(schemes))
	err := parallelFor(c.Workers, len(results), func(i int) error {
		r, err := runScheme(c, schemes[i%len(schemes)], sounds[i/len(schemes)].Gen, nil)
		if err != nil {
			return err
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	wins := 0
	for si, snd := range sounds {
		rMute := results[si*len(schemes)]
		rBose := results[si*len(schemes)+1]
		sm := Series{Name: "MUTE+Passive (" + snd.Name + ")"}
		sb := Series{Name: "Bose_Overall (" + snd.Name + ")"}
		for id := 1; id <= listeners; id++ {
			lm := metrics.NewListener(id)
			scoreMute, err := lm.Rate(sim.SteadyState(rMute.On), sim.SteadyState(rMute.Open), c.SampleRate)
			if err != nil {
				return nil, err
			}
			lb := metrics.NewListener(id)
			scoreBose, err := lb.Rate(sim.SteadyState(rBose.On), sim.SteadyState(rBose.Open), c.SampleRate)
			if err != nil {
				return nil, err
			}
			sm.X = append(sm.X, float64(id))
			sm.Y = append(sm.Y, scoreMute)
			sb.X = append(sb.X, float64(id))
			sb.Y = append(sb.Y, scoreBose)
			if scoreMute > scoreBose {
				wins++
			}
		}
		fig.Series = append(fig.Series, sm, sb)
	}
	fig.Notes = append(fig.Notes,
		note("MUTE rated above Bose in %d/%d listener×sound cells (paper: every volunteer rated MUTE higher)", wins, 2*listeners))
	return fig, nil
}
