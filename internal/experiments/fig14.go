package experiments

import (
	"mute/internal/audio"
	"mute/internal/sim"
)

// soundTypes are the four real-world noises of Figure 14.
func soundTypes(c Config) []struct {
	Name string
	Gen  func() audio.Generator
} {
	return []struct {
		Name string
		Gen  func() audio.Generator
	}{
		{"Male Voice", func() audio.Generator {
			return audio.NewContinuousSpeech(c.Seed+10, audio.MaleVoice, c.SampleRate, c.NoiseAmp*1.6)
		}},
		{"Female Voice", func() audio.Generator {
			return audio.NewContinuousSpeech(c.Seed+20, audio.FemaleVoice, c.SampleRate, c.NoiseAmp*1.6)
		}},
		{"Construction Sound", func() audio.Generator {
			return audio.NewConstructionNoise(c.Seed+30, c.SampleRate, c.NoiseAmp)
		}},
		{"Music", func() audio.Generator {
			return audio.NewMusic(c.Seed+40, c.SampleRate, c.NoiseAmp, 3)
		}},
	}
}

// Fig14 reproduces the sound-type comparison (Figure 14): MUTE_Hollow vs
// Bose_Overall cancellation spectra for male voice, female voice,
// construction sound, and music. The paper's claim: MUTE_Hollow stays
// within ~1 dB of Bose_Overall on average despite the open ear.
func Fig14(c Config) (*Figure, error) {
	c = c.Defaults()
	fig := &Figure{
		ID:     "fig14",
		Title:  "MUTE_Hollow vs Bose_Overall across ambient sound types",
		XLabel: "Frequency (Hz)",
		YLabel: "Cancellation (dB)",
	}
	for _, st := range soundTypes(c) {
		rMute, err := runScheme(c, sim.MUTEHollow, st.Gen, nil)
		if err != nil {
			return nil, err
		}
		sMute, err := spectrumSeries(st.Name+" / MUTE_Hollow", rMute, c.Bands)
		if err != nil {
			return nil, err
		}
		rBose, err := runScheme(c, sim.BoseOverall, st.Gen, nil)
		if err != nil {
			return nil, err
		}
		sBose, err := spectrumSeries(st.Name+" / Bose_Overall", rBose, c.Bands)
		if err != nil {
			return nil, err
		}
		fig.Series = append(fig.Series, sMute, sBose)
		// Headline numbers use the power-weighted full-band average: a
		// per-band mean would be dominated by bands the (sparse-spectrum)
		// sound never excites.
		muteDB, err := rMute.CancellationDB(50, 4000)
		if err != nil {
			return nil, err
		}
		boseDB, err := rBose.CancellationDB(50, 4000)
		if err != nil {
			return nil, err
		}
		fig.Notes = append(fig.Notes, note("%s: MUTE_Hollow %.1f dB vs Bose_Overall %.1f dB (gap %.1f dB; paper: within ~0.9 dB mean)",
			st.Name, muteDB, boseDB, muteDB-boseDB))
	}
	return fig, nil
}
