package experiments

import (
	"mute/internal/audio"
	"mute/internal/sim"
)

// soundTypes are the four real-world noises of Figure 14.
func soundTypes(c Config) []struct {
	Name string
	Gen  func() audio.Generator
} {
	return []struct {
		Name string
		Gen  func() audio.Generator
	}{
		{"Male Voice", func() audio.Generator {
			return audio.NewContinuousSpeech(c.Seed+10, audio.MaleVoice, c.SampleRate, c.NoiseAmp*1.6)
		}},
		{"Female Voice", func() audio.Generator {
			return audio.NewContinuousSpeech(c.Seed+20, audio.FemaleVoice, c.SampleRate, c.NoiseAmp*1.6)
		}},
		{"Construction Sound", func() audio.Generator {
			return audio.NewConstructionNoise(c.Seed+30, c.SampleRate, c.NoiseAmp)
		}},
		{"Music", func() audio.Generator {
			return audio.NewMusic(c.Seed+40, c.SampleRate, c.NoiseAmp, 3)
		}},
	}
}

// Fig14 reproduces the sound-type comparison (Figure 14): MUTE_Hollow vs
// Bose_Overall cancellation spectra for male voice, female voice,
// construction sound, and music. The paper's claim: MUTE_Hollow stays
// within ~1 dB of Bose_Overall on average despite the open ear.
func Fig14(c Config) (*Figure, error) {
	c = c.Defaults()
	fig := &Figure{
		ID:     "fig14",
		Title:  "MUTE_Hollow vs Bose_Overall across ambient sound types",
		XLabel: "Frequency (Hz)",
		YLabel: "Cancellation (dB)",
	}
	// Flatten the sound-type × scheme grid into 8 independent runs; each
	// builds its generator from explicit seeds, so any interleaving yields
	// the same series.
	sounds := soundTypes(c)
	schemes := []struct {
		scheme sim.Scheme
		suffix string
	}{
		{sim.MUTEHollow, " / MUTE_Hollow"},
		{sim.BoseOverall, " / Bose_Overall"},
	}
	type runOut struct {
		s  Series
		db float64
	}
	outs := make([]runOut, len(sounds)*len(schemes))
	err := parallelFor(c.Workers, len(outs), func(i int) error {
		st := sounds[i/len(schemes)]
		sc := schemes[i%len(schemes)]
		r, err := runScheme(c, sc.scheme, st.Gen, nil)
		if err != nil {
			return err
		}
		s, err := spectrumSeries(st.Name+sc.suffix, r, c.Bands)
		if err != nil {
			return err
		}
		// Headline numbers use the power-weighted full-band average: a
		// per-band mean would be dominated by bands the (sparse-spectrum)
		// sound never excites.
		db, err := r.CancellationDB(50, 4000)
		if err != nil {
			return err
		}
		outs[i] = runOut{s: s, db: db}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for si, st := range sounds {
		mute, bose := outs[si*len(schemes)], outs[si*len(schemes)+1]
		fig.Series = append(fig.Series, mute.s, bose.s)
		fig.Notes = append(fig.Notes, note("%s: MUTE_Hollow %.1f dB vs Bose_Overall %.1f dB (gap %.1f dB; paper: within ~0.9 dB mean)",
			st.Name, mute.db, bose.db, mute.db-bose.db))
	}
	return fig, nil
}
