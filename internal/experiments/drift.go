package experiments

import (
	"mute/internal/audio"
	"mute/internal/core"
	"mute/internal/dsp"
	"mute/internal/headphone"
	"mute/internal/sim"
	"mute/internal/stream"
	"mute/internal/supervisor"
	"mute/internal/telemetry"
)

// driftPolicy is one clock-skew strategy under test.
type driftPolicy int

const (
	// driftNaive plays the skewed stream as-is: the reference slides past
	// the canceller's tap span at the skew rate until alignment leaves the
	// filter entirely.
	driftNaive driftPolicy = iota
	// driftCorrected runs the estimator + adaptive resampler loop.
	driftCorrected
	// driftSupervised runs the estimator without correction and lets the
	// degradation ladder demote the canceller when the measured skew
	// exceeds what lookahead alignment can absorb.
	driftSupervised
)

// DriftSweep measures cancellation against relay clock skew: the relay's
// oscillator runs ppm fast, so its forwarded reference slowly slides
// against the ear's sample clock. Loss corrupts individual samples and an
// outage removes stretches, but skew is the insidious failure — every
// sample arrives, each one slightly more misaligned than the last.
//
// Three policies share identical noise and skew schedules per cell: naive
// playout (alignment drifts at s·t until it exits the tap span and
// cancellation collapses), the corrected loop (drift estimator steering an
// adaptive fractional resampler, holding alignment indefinitely), and the
// supervised ladder (estimator only; excess measured skew demotes LANC to
// the local causal fallback, bounding the damage without correcting it).
// A final combined run adds burst loss on top of skew to show the
// estimator holds lock through concealment. Scoring covers the converged
// second half of the run, where the naive misalignment is largest.
func DriftSweep(c Config) (*Figure, error) {
	c = c.Defaults()
	ppms := []float64{0, 25, 50, 100, 200, 400}
	policies := []struct {
		name string
		p    driftPolicy
	}{
		{"naive", driftNaive},
		{"corrected", driftCorrected},
		{"supervised", driftSupervised},
	}

	ys := make([]float64, len(policies)*len(ppms))
	reports := make([]*sim.DriftReport, len(ppms))
	supReports := make([]*supervisor.Report, len(ppms))
	kids := telemetryChildren(c.Telemetry, len(ys))
	err := parallelFor(c.Workers, len(ys), func(i int) error {
		pol := policies[i/len(ppms)]
		di := i % len(ppms)
		// Paired seeds: every policy in one skew cell shares the same
		// noise, so curves differ only by policy and cells are
		// deterministic for any worker count.
		cell := driftCell{
			cfg:       c,
			policy:    pol.p,
			ppm:       ppms[di],
			linkSeed:  c.Seed*2027 + uint64(di)*31,
			noiseSeed: c.Seed + uint64(di)*7,
		}
		db, rep, sup, err := cell.run(childTelemetry(kids, i))
		if err != nil {
			return err
		}
		ys[i] = db
		if pol.p == driftCorrected {
			reports[di] = rep
		}
		if pol.p == driftSupervised {
			supReports[di] = sup
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	mergeTelemetry(c.Telemetry, kids)

	// The combined fault: skew plus burst loss on one corrected run, to
	// show the estimator's robust fit holds lock through concealment.
	combined := driftCell{
		cfg:       c,
		policy:    driftCorrected,
		ppm:       100,
		bgLoss:    0.02,
		linkSeed:  c.Seed*2027 + 997,
		noiseSeed: c.Seed + 3*7,
	}
	combDB, combRep, _, err := combined.run(nil)
	if err != nil {
		return nil, err
	}

	fig := &Figure{
		ID:     "drift",
		Title:  "Cancellation vs relay clock skew (drift estimator + adaptive resampler)",
		XLabel: "clock skew (ppm)",
		YLabel: "residual vs no-ANC (dB)",
	}
	at := func(pi, di int) float64 { return ys[pi*len(ppms)+di] }
	for pi, pol := range policies {
		s := Series{Name: pol.name}
		for di, ppm := range ppms {
			s.X = append(s.X, ppm)
			s.Y = append(s.Y, at(pi, di))
		}
		fig.Series = append(fig.Series, s)
	}
	hundred, last := 3, len(ppms)-1
	fig.Notes = append(fig.Notes,
		note("100 ppm: corrected %.1f dB, supervised %.1f dB vs naive %.1f dB",
			at(1, hundred), at(2, hundred), at(0, hundred)),
		note("%.0f ppm: corrected %.1f dB while naive collapses to %.1f dB",
			ppms[last], at(1, last), at(0, last)))
	if rep := reports[last]; rep != nil {
		fig.Notes = append(fig.Notes,
			note("estimator at %.0f ppm: final %.1f ppm, max |%.1f| ppm, %d suspected steps",
				ppms[last], rep.FinalPPM, rep.MaxAbsPPM, len(rep.RateJumps)))
	}
	if rep := supReports[last]; rep != nil {
		fig.Notes = append(fig.Notes,
			note("supervised ladder at %.0f ppm: %d transitions", ppms[last], len(rep.Transitions)))
	}
	if combRep != nil {
		fig.Notes = append(fig.Notes,
			note("combined 100 ppm skew + 2%% burst loss: corrected %.1f dB, estimator final %.1f ppm",
				combDB, combRep.FinalPPM))
	}
	return fig, nil
}

// driftCell is one (policy, skew) run.
type driftCell struct {
	cfg       Config
	policy    driftPolicy
	ppm       float64
	bgLoss    float64 // optional background burst loss on the link
	linkSeed  uint64
	noiseSeed uint64
}

// run scores the cell: residual power at the ear versus the uncancelled
// primary, in dB over the second half of the run (negative is better).
// The deployment mirrors the loss/outage cells — large geometric
// lookahead, 5 ms frames, one priming frame — but with a deliberately
// small non-causal tap span (12 taps beyond a 4-sample slack), so that
// uncorrected skew walks the alignment out of the filter within tens of
// seconds: at 100 ppm the needed lead shrinks by 0.8 samples per second
// and exits the span near the 35 s mark of a 60 s run.
func (dc driftCell) run(reg *telemetry.Registry) (float64, *sim.DriftReport, *supervisor.Report, error) {
	const (
		frameN = 40 // 5 ms frames at 8 kHz
		prime  = 1  // one priming frame of playout buffer
		nTaps  = 12
		causal = 96
		slack  = 4 // lookahead margin beyond the non-causal taps
	)
	c := dc.cfg
	n := int(c.Duration * c.SampleRate)
	// Low-frequency machine noise, the paper's outage-sensitive regime.
	// The 500 Hz band matters doubly here: it keeps the comparison inside
	// the causal fallback's reach, and it keeps the cubic interpolation
	// error — paid once warping the reference onto the skewed relay clock
	// and once more resampling it back — far below the cancellation
	// floor (the error power scales as roughly the eighth power of
	// bandwidth over sample rate).
	src, err := audio.NewBandLimitedNoise(dc.noiseSeed, c.SampleRate, c.NoiseAmp, 500)
	if err != nil {
		return 0, nil, nil, err
	}
	clean := audio.Render(src, n)

	link := stream.LossParams{Seed: dc.linkSeed}
	if dc.bgLoss > 0 {
		link.Loss = dc.bgLoss
		link.MeanBurst = 4
	}
	recv, mask, stats, err := sim.PacketizeReference(clean, sim.LossTransport{
		Link:         link,
		FrameSamples: frameN,
		PrimeFrames:  prime,
		Skew:         &stream.SkewParams{Seed: dc.linkSeed + 41, PPM: dc.ppm},
		DriftCorrect: dc.policy == driftCorrected,
	})
	if err != nil {
		return 0, nil, nil, err
	}
	drift := stats.Drift

	secPath := []float64{0.85, 0.22, 0.06}
	lanc, err := core.New(core.Config{
		NonCausalTaps: nTaps,
		CausalTaps:    causal,
		Mu:            0.1,
		Normalized:    true,
		Leak:          0.0005,
		SecondaryPath: secPath,
		LossAware:     true,
	})
	if err != nil {
		return 0, nil, nil, err
	}
	var sup *supervisor.Supervisor
	if dc.policy == driftSupervised {
		hcfg := headphone.DefaultConfig(c.SampleRate, secPath)
		hcfg.PipelineDelaySamples = 0
		fb, err := headphone.NewANC(hcfg)
		if err != nil {
			return 0, nil, nil, err
		}
		// Health thresholds as in the outage cell (above the priming
		// transient); the drift rungs are tuned to this cell's tap span:
		// ~60 ppm is where a 12-tap lead no longer outlasts the run, and
		// twice that forces the causal fallback, which has no alignment
		// to lose.
		sup, err = supervisor.New(supervisor.Config{
			DegradeThreshold: 0.2, FallbackThreshold: 0.5, StarvationRun: 400,
			DriftDegradePPM: 60, DriftFallbackPPM: 120,
		}, lanc, fb)
		if err != nil {
			return 0, nil, nil, err
		}
	}

	earCh := dsp.NewStreamConvolver([]float64{0.8, 0.25, 0.1, 0.05})
	secCh := dsp.NewStreamConvolver(secPath)
	const shift = nTaps + slack
	steps := n - shift
	// Drift-stage hooks on the cell's loop clock: the reference is read
	// shift samples ahead, so window w of the received stream is consumed
	// at t = w − shift.
	var holdAt map[int]bool
	if drift != nil && dc.policy == driftCorrected {
		for _, j := range drift.RateJumps {
			if holdAt == nil {
				holdAt = make(map[int]bool)
			}
			holdAt[int(j)-shift] = true
		}
	}
	var wins []sim.DriftWindow
	if drift != nil && sup != nil {
		wins = drift.Windows
	}
	wi := 0
	var resPow, priPow float64
	e := 0.0
	for t := 0; t < steps; t++ {
		for wi < len(wins) && int(wins[wi].AtSample)-shift <= t {
			if int(wins[wi].AtSample)-shift == t {
				sup.ObserveDrift(wins[wi].PPM, wins[wi].Locked)
			}
			wi++
		}
		if holdAt[t] {
			lanc.HoldAdaptation(2*frameN, 0)
		}
		x, real := recv[t+shift], mask[t+shift]
		d := earCh.Process(clean[t])
		var a float64
		if sup != nil {
			a = sup.Step(x, d, e, real)
		} else {
			a = lanc.StepMasked(x, e, real)
		}
		e = d + secCh.Process(a)
		if t >= steps/2 {
			resPow += e * e
			priPow += d * d
		}
	}
	db := dsp.DB((resPow + dsp.EpsilonPower) / (priPow + dsp.EpsilonPower))

	var supRep *supervisor.Report
	if sup != nil {
		r := sup.Report()
		supRep = &r
	}
	if reg != nil {
		// Observation only: the run above never branches on reg, so the
		// returned dB is byte-identical with telemetry on or off.
		reg.Counter("drift.runs").Inc()
		reg.Counter("drift.samples").Add(int64(steps))
		if drift != nil {
			reg.Counter("drift.rate_jumps").Add(int64(len(drift.RateJumps)))
			reg.Gauge("drift.final_ppm").Set(drift.FinalPPM)
		}
		if supRep != nil {
			reg.Counter("supervisor.transitions").Add(int64(len(supRep.Transitions)))
			for st, samples := range supRep.TimeInState {
				reg.Counter("supervisor.time_in_" + supervisor.State(st).String()).Add(samples)
			}
		}
		reg.Histogram("drift.cell_residual_db", telemetry.HistogramOpts{Lo: 1e-2, Ratio: 2, Buckets: 16}).Observe(-db)
	}
	return db, drift, supRep, nil
}
