package experiments

import (
	"reflect"
	"testing"

	"mute/internal/telemetry"
)

// figuresEqual compares two figures value by value (DeepEqual covers the
// float slices bit for bit — the acceptance bar is bit-identical, not
// approximately equal).
func figuresEqual(a, b *Figure) bool {
	return reflect.DeepEqual(a, b)
}

// TestTelemetryResultNeutral is the acceptance test for observability:
// attaching a telemetry registry must not change a single bit of the loss
// and fig12 sweep results, at Workers=1 and Workers=8.
func TestTelemetryResultNeutral(t *testing.T) {
	sweeps := []struct {
		name string
		run  func(Config) (*Figure, error)
		cfg  Config
	}{
		{"loss", LossSweep, Config{Duration: 1.5, Seed: 7}},
		{"fig12", Fig12, Config{Duration: 1.5, Seed: 7, Bands: 8}},
	}
	for _, sw := range sweeps {
		sw := sw
		t.Run(sw.name, func(t *testing.T) {
			t.Parallel()
			baseCfg := sw.cfg
			baseCfg.Workers = 1
			base, err := sw.run(baseCfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 8} {
				cfg := sw.cfg
				cfg.Workers = workers
				cfg.Telemetry = telemetry.NewRegistry()
				fig, err := sw.run(cfg)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if !figuresEqual(fig, base) {
					t.Errorf("workers=%d: enabling telemetry changed the %s results", workers, sw.name)
				}
				if len(cfg.Telemetry.Snapshot().Counters) == 0 {
					t.Errorf("workers=%d: registry stayed empty — the sweep is not instrumented", workers)
				}
			}
		})
	}
}

// TestTelemetryMergeDeterministicAcrossWorkers runs the loss sweep at 1, 2,
// and 8 workers and requires the aggregated registry (timers stripped —
// they carry wall clock) to be identical: children merge in task order, so
// the worker count must not show through.
func TestTelemetryMergeDeterministicAcrossWorkers(t *testing.T) {
	snapshotAt := func(workers int) telemetry.Snapshot {
		reg := telemetry.NewRegistry()
		if _, err := LossSweep(Config{Duration: 1, Seed: 3, Workers: workers, Telemetry: reg}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return reg.Snapshot().Deterministic()
	}
	want := snapshotAt(1)
	for _, workers := range []int{2, 8} {
		got := snapshotAt(workers)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: aggregated telemetry differs from sequential:\ngot  %s\nwant %s",
				workers, got.Text(), want.Text())
		}
	}
}

// TestTraceResultNeutral: attaching a trace to a figure run must not change
// its results either (the trace only observes the sample streams).
func TestTraceResultNeutral(t *testing.T) {
	cfg := Config{Duration: 1.5, Seed: 7, Bands: 8, Workers: 1}
	base, err := Fig12(cfg)
	if err != nil {
		t.Fatal(err)
	}
	traced := cfg
	traced.Trace = telemetry.NewTrace()
	fig, err := Fig12(traced)
	if err != nil {
		t.Fatal(err)
	}
	if !figuresEqual(fig, base) {
		t.Error("enabling the trace changed the fig12 results")
	}
	if traced.Trace.Len() == 0 {
		t.Error("trace stayed empty — the runs are not traced")
	}
}
