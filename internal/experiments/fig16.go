package experiments

import (
	"mute/internal/audio"
	"mute/internal/core"
	"mute/internal/sim"
)

// Fig16 reproduces the lookahead-impact experiment (Figure 16): the
// reference signal is delayed inside the DSP (the paper's delayed line
// buffer) so that the effective lookahead equals the Equation 3 lower
// bound plus 0, 0.38, 0.75 and 1.13 ms, without touching the acoustics.
// Cancellation must improve monotonically with lookahead.
func Fig16(c Config) (*Figure, error) {
	c = c.Defaults()
	gen := func() audio.Generator { return audio.NewWhiteNoise(c.Seed, c.SampleRate, c.NoiseAmp) }
	fig := &Figure{
		ID:     "fig16",
		Title:  "Cancellation vs lookahead (delayed-line injection)",
		XLabel: "Frequency (Hz)",
		YLabel: "Cancellation (dB)",
	}
	// The paper's offsets relative to the lower bound, in milliseconds.
	offsets := []struct {
		Name string
		Ms   float64
	}{
		{"Lower Bound", 0},
		{"0.38ms More", 0.38},
		{"0.75ms More", 0.75},
		{"1.13ms More", 1.13},
	}
	scene := sim.DefaultScene(gen())
	geoLA := scene.LookaheadSamples()
	pipe := core.DefaultPipeline().Total()
	outs := make([]Series, len(offsets))
	err := parallelFor(c.Workers, len(offsets), func(i int) error {
		extraTaps := int(offsets[i].Ms / 1000 * c.SampleRate)
		// Delay the reference so exactly pipe+extraTaps samples of
		// lookahead remain.
		delay := geoLA - pipe - extraTaps
		if delay < 0 {
			delay = 0
		}
		r, err := runScheme(c, sim.MUTEHollow, gen, func(p *sim.Params) {
			p.ExtraReferenceDelay = delay
		})
		if err != nil {
			return err
		}
		s, err := spectrumSeries(offsets[i].Name, r, c.Bands)
		if err != nil {
			return err
		}
		outs[i] = s
		return nil
	})
	if err != nil {
		return nil, err
	}
	var avgs []float64
	for _, s := range outs {
		fig.Series = append(fig.Series, s)
		avgs = append(avgs, bandAvg(s, 0, 4000))
	}
	fig.Notes = append(fig.Notes,
		note("full-band averages: LB %.1f, +0.38ms %.1f, +0.75ms %.1f, +1.13ms %.1f dB (paper: monotone improvement with lookahead)",
			avgs[0], avgs[1], avgs[2], avgs[3]))
	return fig, nil
}
