package experiments

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
)

func TestParallelForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const n = 37
		var hits [n]atomic.Int32
		err := parallelFor(workers, n, func(i int) error {
			hits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestParallelForReturnsFirstErrorByIndex(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	for _, workers := range []int{1, 4} {
		err := parallelFor(workers, 10, func(i int) error {
			switch i {
			case 3:
				return errA
			case 7:
				return errB
			}
			return nil
		})
		// The lowest-index error wins regardless of completion order.
		if !errors.Is(err, errA) {
			t.Fatalf("workers=%d: got %v, want %v", workers, err, errA)
		}
	}
}

func TestParallelForZeroTasks(t *testing.T) {
	if err := parallelFor(4, 0, func(int) error { t.Fatal("fn called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

// TestFiguresDeterministicAcrossWorkerCounts is the parallel runner's core
// guarantee: the same Seed must produce byte-identical Figure output with
// Workers=1 (the sequential reference order) and Workers=8. A failure here
// means a run is sharing RNG state or clobbering a neighbor's slot.
func TestFiguresDeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulations")
	}
	base := Config{Duration: 2, Seed: 42}
	figs := []struct {
		name string
		run  func(Config) (*Figure, error)
	}{
		{"Fig12", Fig12}, // independent schemes, shared generator seed
		{"Fig16", Fig16}, // parameter sweep over one scheme
	}
	for _, f := range figs {
		seqCfg := base
		seqCfg.Workers = 1
		seq, err := f.run(seqCfg)
		if err != nil {
			t.Fatalf("%s sequential: %v", f.name, err)
		}
		parCfg := base
		parCfg.Workers = 8
		par, err := f.run(parCfg)
		if err != nil {
			t.Fatalf("%s parallel: %v", f.name, err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("%s: Workers=1 and Workers=8 outputs differ", f.name)
		}
	}
}
