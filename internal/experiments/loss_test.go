package experiments

import (
	"reflect"
	"testing"
)

func lossSeries(t *testing.T, fig *Figure, name string) Series {
	t.Helper()
	for _, s := range fig.Series {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("series %q missing from %v", name, fig.Series)
	return Series{}
}

func TestLossSweepShapes(t *testing.T) {
	fig, err := LossSweep(Config{Duration: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "loss" || len(fig.Series) != 8 {
		t.Fatalf("malformed figure: id=%q series=%d", fig.ID, len(fig.Series))
	}
	naive := lossSeries(t, fig, "naive_burst")
	freeze := lossSeries(t, fig, "freeze_burst")
	freezeFEC := lossSeries(t, fig, "freeze+fec_burst")
	naiveIID := lossSeries(t, fig, "naive_iid")
	freezeIID := lossSeries(t, fig, "freeze_iid")

	// At 0% loss the freeze mode must match naive exactly: the loss-aware
	// path is bit-identical when nothing is concealed.
	if naive.Y[0] != freeze.Y[0] || naiveIID.Y[0] != freezeIID.Y[0] {
		t.Errorf("freeze != naive at 0%% loss: %.2f vs %.2f (burst), %.2f vs %.2f (iid)",
			freeze.Y[0], naive.Y[0], freezeIID.Y[0], naiveIID.Y[0])
	}
	// Everyone cancels at 0% loss.
	if naive.Y[0] > -10 {
		t.Errorf("lossless baseline too weak: %.1f dB", naive.Y[0])
	}
	// The headline: at 5% and 10% burst loss, freezing on concealment
	// beats naive adaptation by several dB.
	for _, ri := range []int{2, 3} { // rates[2]=5%, rates[3]=10%
		if freeze.Y[ri] > naive.Y[ri]-3 {
			t.Errorf("at %.0f%% burst loss freeze = %.1f dB, naive = %.1f dB; want ≥ 3 dB better",
				naive.X[ri], freeze.Y[ri], naive.Y[ri])
		}
	}
	// freeze+FEC holds within a few dB of the lossless baseline up to 10%.
	if d := freezeFEC.Y[3] - freezeFEC.Y[0]; d > 6 {
		t.Errorf("freeze+FEC degraded %.1f dB from 0%% to 10%% loss, want ≤ 6", d)
	}
	// Nothing may ever amplify above the passive floor.
	for _, s := range fig.Series {
		if s.Name == "naive_burst" || s.Name == "naive_iid" {
			continue // naive is allowed to collapse; that is the finding
		}
		for i, y := range s.Y {
			if y > 1 {
				t.Errorf("%s amplified at %.0f%% loss: %.1f dB", s.Name, s.X[i], y)
			}
		}
	}
}

func TestLossSweepDeterministicAcrossWorkers(t *testing.T) {
	c := Config{Duration: 2, Seed: 3}
	c1, c8 := c, c
	c1.Workers = 1
	c8.Workers = 8
	f1, err := LossSweep(c1)
	if err != nil {
		t.Fatal(err)
	}
	f8, err := LossSweep(c8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f1.Series, f8.Series) {
		t.Error("loss sweep differs between 1 and 8 workers")
	}
}
