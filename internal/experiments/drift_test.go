package experiments

import (
	"reflect"
	"strings"
	"testing"
)

// TestDriftSweepSmoke checks the sweep's shape and headline ordering at a
// short duration: at the steepest skew the corrected loop must beat naive
// playout, and the zero-skew column must agree across policies that share
// a path (naive and corrected are bit-identical there by the clean-clock
// pin, so their scores coincide exactly).
func TestDriftSweepSmoke(t *testing.T) {
	fig, err := DriftSweep(Config{Duration: 4, Seed: 3, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "drift" || len(fig.Series) != 3 {
		t.Fatalf("figure %q has %d series, want drift/3", fig.ID, len(fig.Series))
	}
	byName := map[string][]float64{}
	for _, s := range fig.Series {
		byName[s.Name] = s.Y
	}
	if byName["naive"][0] != byName["corrected"][0] {
		t.Errorf("zero-skew column differs: naive %.4f dB vs corrected %.4f dB (clean-clock identity broken)",
			byName["naive"][0], byName["corrected"][0])
	}
	last := len(fig.Series[0].Y) - 1
	if corrected, naive := byName["corrected"][last], byName["naive"][last]; corrected >= naive {
		t.Errorf("steepest skew: corrected %.2f dB not better than naive %.2f dB", corrected, naive)
	}
	var estNote bool
	for _, n := range fig.Notes {
		if strings.Contains(n, "estimator") {
			estNote = true
		}
	}
	if !estNote {
		t.Error("figure lacks the estimator note")
	}
}

// TestDriftSweepDeterministicAcrossWorkers pins the drift stage's
// determinism contract at the experiment layer: the same seeds yield an
// identical figure — every curve and note — whether the cells run
// sequentially or on eight workers.
func TestDriftSweepDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) *Figure {
		t.Helper()
		fig, err := DriftSweep(Config{Duration: 3, Seed: 5, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return fig
	}
	seq := run(1)
	par := run(8)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("figure differs between Workers=1 and Workers=8:\nseq: %+v\npar: %+v", seq, par)
	}
}

// TestDriftAcceptance is the PR's acceptance criterion: over a 60 s run at
// 100 ppm constant skew, the corrected pipeline stays within 1.5 dB of the
// clean-clock baseline while naive playout — whose alignment exits the tap
// span around the 35 s mark — gives up at least 6 dB.
func TestDriftAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("60 s acceptance run")
	}
	c := Config{Duration: 60, Seed: 1, Workers: 1}.Defaults()
	score := func(ppm float64, policy driftPolicy) float64 {
		cell := driftCell{cfg: c, policy: policy, ppm: ppm, linkSeed: c.Seed * 2027, noiseSeed: c.Seed}
		db, _, _, err := cell.run(nil)
		if err != nil {
			t.Fatal(err)
		}
		return db
	}
	baseline := score(0, driftNaive)
	naive := score(100, driftNaive)
	corrected := score(100, driftCorrected)
	t.Logf("baseline %.2f dB, naive %.2f dB, corrected %.2f dB", baseline, naive, corrected)
	if corrected-baseline > 1.5 {
		t.Errorf("corrected %.2f dB more than 1.5 dB off the clean-clock baseline %.2f dB", corrected, baseline)
	}
	if naive-baseline < 6 {
		t.Errorf("naive %.2f dB degraded less than 6 dB from baseline %.2f dB — the cell no longer stresses skew", naive, baseline)
	}
}
