package experiments

import (
	"mute/internal/acoustics"
	"mute/internal/audio"
	"mute/internal/dsp"
	"mute/internal/relaysel"
	"mute/internal/rf"
	"mute/internal/sim"
)

// Variants compares the architectural variants of Section 4.3 under the
// standard white-noise scene: the evaluated wall relay, the personal
// tabletop (DSP at the relay, paying a control-loop round trip), and smart
// noise (relay attached to the source, maximal lookahead).
func Variants(c Config) (*Figure, error) {
	c = c.Defaults()
	gen := func() audio.Generator { return audio.NewWhiteNoise(c.Seed, c.SampleRate, c.NoiseAmp) }
	fig := &Figure{
		ID:     "variants",
		Title:  "Architectural variants (Section 4.3)",
		XLabel: "Variant index",
		YLabel: "Full-band cancellation (dB)",
	}
	cases := []struct {
		name string
		vp   func(sim.Params) sim.VariantParams
	}{
		{"WallRelay", func(p sim.Params) sim.VariantParams {
			return sim.VariantParams{Base: p, Variant: sim.WallRelay}
		}},
		{"Tabletop (loop 8)", func(p sim.Params) sim.VariantParams {
			return sim.VariantParams{Base: p, Variant: sim.Tabletop, ControlLoopDelaySamples: 8}
		}},
		{"Tabletop (loop 40)", func(p sim.Params) sim.VariantParams {
			return sim.VariantParams{Base: p, Variant: sim.Tabletop, ControlLoopDelaySamples: 40}
		}},
		{"SmartNoise", func(p sim.Params) sim.VariantParams {
			return sim.VariantParams{Base: p, Variant: sim.SmartNoise}
		}},
	}
	type out struct {
		db   float64
		la   int
		taps int
	}
	outs := make([]out, len(cases))
	err := parallelFor(c.Workers, len(cases), func(i int) error {
		p := sim.DefaultParams(sim.DefaultScene(gen()))
		p.Duration = c.Duration
		p.Seed = c.Seed
		r, err := sim.RunVariant(cases[i].vp(p))
		if err != nil {
			return err
		}
		db, err := r.CancellationDB(50, 4000)
		if err != nil {
			return err
		}
		outs[i] = out{db: db, la: r.LookaheadSamples, taps: r.UsedNonCausalTaps}
		return nil
	})
	if err != nil {
		return nil, err
	}
	s := Series{Name: "MUTE variants"}
	for i, cs := range cases {
		s.X = append(s.X, float64(i))
		s.Y = append(s.Y, outs[i].db)
		fig.Notes = append(fig.Notes, note("%s: %.1f dB (lookahead %d samples, N=%d)",
			cs.name, outs[i].db, outs[i].la, outs[i].taps))
	}
	fig.Series = []Series{s}
	return fig, nil
}

// Mobility measures the head-mobility cost (Section 6): the ear device
// drifts across the room during the run, forcing the adaptive filter to
// track a changing channel.
func Mobility(c Config) (*Figure, error) {
	c = c.Defaults()
	gen := func() audio.Generator { return audio.NewWhiteNoise(c.Seed, c.SampleRate, c.NoiseAmp) }
	fig := &Figure{
		ID:     "mobility",
		Title:  "Head mobility: cancellation vs ear drift during the run",
		XLabel: "Drift (m)",
		YLabel: "Full-band cancellation (dB)",
	}
	drifts := []float64{0, 0.3, 0.6, 1.2}
	ys := make([]float64, len(drifts))
	err := parallelFor(c.Workers, len(drifts), func(i int) error {
		p := sim.DefaultParams(sim.DefaultScene(gen()))
		p.Duration = c.Duration
		p.Seed = c.Seed
		end := p.Scene.EarPos
		end.Y += drifts[i]
		if !p.Scene.Room.Inside(end) {
			end.Y = p.Scene.EarPos.Y - drifts[i]
		}
		r, err := sim.RunMobile(sim.MobilityParams{Base: p, EarEnd: end})
		if err != nil {
			return err
		}
		db, err := r.CancellationDB(50, 4000)
		if err != nil {
			return err
		}
		ys[i] = db
		return nil
	})
	if err != nil {
		return nil, err
	}
	s := Series{Name: "MUTE_Hollow, moving ear"}
	for i, drift := range drifts {
		s.X = append(s.X, drift)
		s.Y = append(s.Y, ys[i])
	}
	fig.Series = []Series{s}
	fig.Notes = append(fig.Notes,
		note("static %.1f dB vs 1.2 m drift %.1f dB — mobility costs convergence, as Section 6 anticipates", s.Y[0], s.Y[len(s.Y)-1]))
	return fig, nil
}

// Contention quantifies Section 6's RF coexistence argument: how much of
// the 900 MHz ISM band a deployment of relays occupies, and the audio
// penalty of an un-coordinated co-channel transmitter vs a carrier-sensed
// one.
func Contention(c Config) (*Figure, error) {
	c = c.Defaults()
	band := rf.DefaultISMBand()
	fm := rf.DefaultFMParams()
	fig := &Figure{
		ID:     "contention",
		Title:  "ISM-band occupancy and co-channel interference (Section 6)",
		XLabel: "Relays",
		YLabel: "Band fraction occupied",
	}
	s := Series{Name: "Occupied fraction"}
	for _, n := range []int{1, 4, 16, 64} {
		s.X = append(s.X, float64(n))
		s.Y = append(s.Y, rf.FractionOccupied(band, fm, n))
	}
	fig.Series = []Series{s}
	allocs, err := rf.AllocateCarriers(band, fm, 4)
	if err != nil {
		return nil, err
	}
	victim := allocs[0]
	uncoordinated := rf.CoChannelInterference(victim, victim, 0)
	sensed, err := rf.FindClearCarrier(band, fm, allocs)
	if err != nil {
		return nil, err
	}
	coordinated := rf.CoChannelInterference(victim, rf.Allocation{CarrierHz: sensed, BandwidthHz: victim.BandwidthHz}, 0)
	fig.Notes = append(fig.Notes,
		note("4 relays occupy %.3f%% of the 26 MHz band (paper: 'a small fraction')", 100*rf.FractionOccupied(band, fm, 4)),
		note("co-channel equal-power interferer costs %.0f dB audio SNR; carrier-sensed allocation costs %.0f dB", uncoordinated, coordinated),
	)
	return fig, nil
}

// TrackerExperiment exercises the Section 4.2 periodic re-correlation: the
// sound source jumps between two positions and the tracker must re-associate
// with the relay nearest the active position.
func TrackerExperiment(c Config) (*Figure, error) {
	c = c.Defaults()
	room := acoustics.DefaultRoom()
	client := acoustics.Point{X: 2.5, Y: 2.0, Z: 1.2}
	relayPos := []acoustics.Point{
		{X: 0.4, Y: 2.0, Z: 1.5},
		{X: 4.6, Y: 2.0, Z: 1.5},
	}
	srcPos := []acoustics.Point{
		{X: 0.8, Y: 2.0, Z: 1.4}, // near relay 0
		{X: 4.2, Y: 2.0, Z: 1.4}, // near relay 1
	}
	fs := c.SampleRate
	segment := int(2 * fs)

	// Precompute channels per (source, receiver).
	type chans struct {
		toClient []float64
		toRelay  [][]float64
	}
	var cc []chans
	for _, sp := range srcPos {
		h, err := room.ImpulseResponse(sp, client, fs)
		if err != nil {
			return nil, err
		}
		entry := chans{toClient: h}
		for _, rp := range relayPos {
			hr, err := room.ImpulseResponse(sp, rp, fs)
			if err != nil {
				return nil, err
			}
			entry.toRelay = append(entry.toRelay, hr)
		}
		cc = append(cc, entry)
	}
	tracker, err := relaysel.NewTracker(relaysel.TrackerConfig{
		Relays:          len(relayPos),
		WindowSamples:   2048,
		IntervalSamples: 1024,
		MaxLagSamples:   int(0.012 * fs),
	})
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "tracker",
		Title:  "Periodic re-correlation follows a moving source (Section 4.2)",
		XLabel: "Segment",
		YLabel: "Associated relay (0 = none)",
	}
	s := Series{Name: "Association"}
	correct := 0
	total := 0
	for seg := 0; seg < 4; seg++ {
		active := seg % 2
		wave := audio.Render(audio.NewWhiteNoise(c.Seed+uint64(seg), fs, c.NoiseAmp), segment)
		local := dsp.ConvolveSame(wave, cc[active].toClient)
		fwd := make([][]float64, len(relayPos))
		for r := range relayPos {
			fwd[r] = dsp.ConvolveSame(wave, cc[active].toRelay[r])
		}
		for i := 0; i < segment; i++ {
			row := make([]float64, len(relayPos))
			for r := range relayPos {
				row[r] = fwd[r][i]
			}
			if _, err := tracker.Push(local[i], row); err != nil {
				return nil, err
			}
		}
		s.X = append(s.X, float64(seg))
		s.Y = append(s.Y, float64(tracker.Current()+1))
		total++
		if tracker.Current() == active {
			correct++
		}
	}
	fig.Series = []Series{s}
	fig.Notes = append(fig.Notes,
		note("tracker matched the active source's nearest relay in %d/%d segments with %d association switches",
			correct, total, tracker.Switches()))
	return fig, nil
}
