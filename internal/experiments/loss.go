package experiments

import (
	"mute/internal/audio"
	"mute/internal/core"
	"mute/internal/dsp"
	"mute/internal/sim"
	"mute/internal/stream"
	"mute/internal/telemetry"
)

// LossSweep measures cancellation against packet loss on the forwarded
// reference: the transport-robustness experiment for the digital-relay
// deployment. The reference reaches the ear device framed over a
// fault-injected link (i.i.d. and Gilbert–Elliott burst loss), with FEC
// on/off and the canceller's concealment-freeze mode on/off, at loss
// rates from 0 to 20%.
//
// The scenario is a large-lookahead deployment (the paper's Section 6
// "smart noise source" regime): geometric lookahead covers the playout
// buffering the transport needs (prime·frame + N + slack samples), so
// loss — not latency — is the variable under test. Naive adaptation
// treats the jitter buffer's zero-fill concealment as real audio and
// corrupts its filter at every burst; the freeze mode holds the weights
// until concealed samples leave the gradient window and ramps back after,
// degrading toward the passive floor instead.
func LossSweep(c Config) (*Figure, error) {
	c = c.Defaults()
	rates := []float64{0, 0.02, 0.05, 0.10, 0.20}
	type variant struct {
		name   string
		burst  float64 // Gilbert–Elliott mean burst length (0 = i.i.d.)
		fec    bool
		freeze bool
	}
	var variants []variant
	for _, b := range []struct {
		tag  string
		mean float64
	}{{"iid", 0}, {"burst", 4}} {
		for _, freeze := range []bool{false, true} {
			for _, fec := range []bool{false, true} {
				name := "naive"
				if freeze {
					name = "freeze"
				}
				if fec {
					name += "+fec"
				}
				variants = append(variants, variant{name + "_" + b.tag, b.mean, fec, freeze})
			}
		}
	}

	ys := make([]float64, len(variants)*len(rates))
	kids := telemetryChildren(c.Telemetry, len(ys))
	err := parallelFor(c.Workers, len(ys), func(i int) error {
		v := variants[i/len(rates)]
		ri := i % len(rates)
		// Paired seeds: all four policy variants of one (rate, burstiness)
		// cell share the same noise and link seeds, so curves differ only
		// by policy, and every cell is deterministic for any worker count.
		burstIdx := uint64(0)
		if v.burst > 0 {
			burstIdx = 1
		}
		link := stream.LossParams{
			Seed:      c.Seed*1009 + uint64(ri)*17 + burstIdx*5,
			Loss:      rates[ri],
			MeanBurst: v.burst,
		}
		db, err := lossRun(c, link, v.fec, v.freeze, c.Seed+uint64(ri)*23, childTelemetry(kids, i))
		if err != nil {
			return err
		}
		ys[i] = db
		return nil
	})
	if err != nil {
		return nil, err
	}
	mergeTelemetry(c.Telemetry, kids)

	fig := &Figure{
		ID:     "loss",
		Title:  "Cancellation vs reference packet loss (freeze/FEC policies)",
		XLabel: "loss rate (%)",
		YLabel: "residual vs no-ANC (dB)",
	}
	at := func(vi, ri int) float64 { return ys[vi*len(rates)+ri] }
	for vi, v := range variants {
		s := Series{Name: v.name}
		for ri, r := range rates {
			s.X = append(s.X, r*100)
			s.Y = append(s.Y, at(vi, ri))
		}
		fig.Series = append(fig.Series, s)
	}
	// Headline: burst loss at 10% — freeze+FEC vs naive, and freeze+FEC's
	// own degradation from the lossless baseline.
	var naiveB, freezeFECB int
	for vi, v := range variants {
		switch v.name {
		case "naive_burst":
			naiveB = vi
		case "freeze+fec_burst":
			freezeFECB = vi
		}
	}
	r10 := 3 // index of 0.10 in rates
	fig.Notes = append(fig.Notes,
		note("10%% burst loss: freeze+FEC %.1f dB vs naive %.1f dB",
			at(freezeFECB, r10), at(naiveB, r10)),
		note("freeze+FEC degradation 0%%→10%% loss: %.1f dB",
			at(freezeFECB, r10)-at(freezeFECB, 0)))
	return fig, nil
}

// lossRun scores one (link, policy) cell: residual power at the ear versus
// the uncancelled primary, in dB over the converged second half (negative
// is better; 0 dB is the passive floor).
//
// Scoring skips samples whose anti-noise window still contains concealed
// reference — there the residual equals the passive floor for every
// policy, because the audio simply never arrived, and averaging that
// common floor in would mask the effect under test. What remains is
// cancellation where cancellation is possible: it stays at the baseline
// when the filter survived the burst, and collapses when naive adaptation
// corrupted it.
func lossRun(c Config, link stream.LossParams, fec, freeze bool, noiseSeed uint64, reg *telemetry.Registry) (float64, error) {
	const (
		frameN = 40 // 5 ms frames at 8 kHz
		prime  = 4  // playout buffer covers the FEC group and jitter
		nTaps  = 32
		causal = 128
		slack  = 4 // lookahead margin beyond the non-causal taps
	)
	n := int(c.Duration * c.SampleRate)
	clean := audio.Render(audio.NewWhiteNoise(noiseSeed, c.SampleRate, c.NoiseAmp), n)
	lt := sim.LossTransport{Link: link, FrameSamples: frameN, PrimeFrames: prime}
	if fec {
		lt.FECGroup = 4
	}
	recv, mask, stats, err := sim.PacketizeReference(clean, lt)
	if err != nil {
		return 0, err
	}

	// The same synthetic acoustic leg as cmd/muteear's self-test: the ear
	// hears the source through a short room tail while the reference
	// stream runs shift = N + slack samples ahead — what remains of the
	// deployment's lookahead after the playout buffer consumed its share.
	secPath := []float64{0.85, 0.22, 0.06}
	lanc, err := core.New(core.Config{
		NonCausalTaps: nTaps,
		CausalTaps:    causal,
		Mu:            0.1,
		Normalized:    true,
		Leak:          0.0005,
		SecondaryPath: secPath,
		LossAware:     freeze,
	})
	if err != nil {
		return 0, err
	}
	earCh := dsp.NewStreamConvolver([]float64{0.8, 0.25, 0.1, 0.05})
	secCh := dsp.NewStreamConvolver(secPath)
	const shift = nTaps + slack
	steps := n - shift
	var resPow, priPow float64
	window := 0 // samples until the anti-noise window is all-real again
	e := 0.0
	for t := 0; t < steps; t++ {
		real := mask[t+shift]
		a := lanc.StepMasked(recv[t+shift], e, real)
		d := earCh.Process(clean[t])
		e = d + secCh.Process(a)
		if real {
			window--
		} else {
			window = nTaps + causal + 1
		}
		if t >= steps/2 && window <= 0 {
			resPow += e * e
			priPow += d * d
		}
	}
	db := dsp.DB((resPow + dsp.EpsilonPower) / (priPow + dsp.EpsilonPower))
	if reg != nil {
		// Observation only: the run above never branches on reg, so the
		// returned dB is byte-identical with telemetry on or off.
		reg.Counter("loss.runs").Inc()
		reg.Counter("loss.samples").Add(int64(steps))
		stats.Jitter.Publish(reg, "stream.")
		stats.Link.Publish(reg, "link.")
		reg.Counter("stream.fec_recovered").Add(int64(stats.FECRecovered))
		reg.Gauge("lanc.tap_energy").Set(lanc.TapEnergy())
		reg.Gauge("lanc.mu_eff").Set(lanc.EffectiveStep())
		reg.Histogram("loss.cell_residual_db", telemetry.HistogramOpts{Lo: 1e-2, Ratio: 2, Buckets: 16}).Observe(-db)
	}
	return db, nil
}
