package experiments

import (
	"reflect"
	"strings"
	"testing"
)

// TestOutageSweepSmoke checks the sweep's shape and the headline ordering:
// over the longest outage, the supervised ladder and two-relay failover
// must both beat naive adaptation, and failover (whose second relay never
// loses the reference) must stay closest to the short-outage baseline.
func TestOutageSweepSmoke(t *testing.T) {
	fig, err := OutageSweep(Config{Duration: 4, Seed: 3, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "outage" || len(fig.Series) != 4 {
		t.Fatalf("figure %q has %d series, want outage/4", fig.ID, len(fig.Series))
	}
	byName := map[string][]float64{}
	for _, s := range fig.Series {
		byName[s.Name] = s.Y
	}
	last := len(fig.Series[0].Y) - 1
	naive, supervised, failover := byName["naive"][last], byName["supervised"][last], byName["failover_2relay"][last]
	if supervised >= naive {
		t.Errorf("longest outage: supervised %.2f dB not better than naive %.2f dB", supervised, naive)
	}
	if failover >= naive {
		t.Errorf("longest outage: failover %.2f dB not better than naive %.2f dB", failover, naive)
	}
	var stateNote bool
	for _, n := range fig.Notes {
		if strings.Contains(n, "time-in-state") {
			stateNote = true
		}
	}
	if !stateNote {
		t.Error("figure lacks the time-in-state note")
	}
}

// TestOutageSweepDeterministicAcrossWorkers pins the supervisor's
// determinism contract at the experiment layer: the same seeded outage
// schedule yields an identical figure — every curve, note, transition
// count, and time-in-state breakdown — whether the cells run sequentially
// or on eight workers.
func TestOutageSweepDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) *Figure {
		t.Helper()
		fig, err := OutageSweep(Config{Duration: 3, Seed: 5, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return fig
	}
	seq := run(1)
	par := run(8)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("figure differs between Workers=1 and Workers=8:\nseq: %+v\npar: %+v", seq, par)
	}
}
