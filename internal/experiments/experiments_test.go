package experiments

import (
	"testing"
)

// quickCfg keeps experiment tests fast while preserving the shapes the
// assertions check. Full-length runs happen in the benchmark harness.
func quickCfg() Config {
	return Config{Duration: 6, Bands: 16}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.Defaults()
	if c.SampleRate != 8000 || c.Duration != 12 || c.Seed != 1 || c.NoiseAmp != 0.5 || c.Bands != 32 {
		t.Errorf("defaults wrong: %+v", c)
	}
	// Explicit values survive.
	c2 := Config{Duration: 3, Bands: 8}.Defaults()
	if c2.Duration != 3 || c2.Bands != 8 {
		t.Error("explicit values should survive Defaults")
	}
}

func TestFig12Shapes(t *testing.T) {
	fig, err := Fig12(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("fig12 should have 4 series, got %d", len(fig.Series))
	}
	byName := map[string]Series{}
	for _, s := range fig.Series {
		byName[s.Name] = s
	}
	boseActive := byName["Bose_Active"]
	boseOverall := byName["Bose_Overall"]
	muteHollow := byName["MUTE_Hollow"]
	mutePassive := byName["MUTE+Passive"]
	// Shape 1: Bose_Active works below 1 kHz, not above.
	if low, high := bandAvg(boseActive, 100, 1000), bandAvg(boseActive, 1500, 4000); low >= high-1 {
		t.Errorf("Bose_Active: low band %.1f should clearly beat high band %.1f", low, high)
	}
	// Shape 2: MUTE_Hollow cancels across the whole band.
	if high := bandAvg(muteHollow, 1000, 4000); high > -4 {
		t.Errorf("MUTE_Hollow high band = %.1f dB, want < -4", high)
	}
	// Shape 3: MUTE+Passive clearly the best overall.
	if mp, bo := bandAvg(mutePassive, 0, 4000), bandAvg(boseOverall, 0, 4000); mp > bo-4 {
		t.Errorf("MUTE+Passive %.1f should beat Bose_Overall %.1f by >4 dB", mp, bo)
	}
	// Shape 4: MUTE_Hollow comparable to Bose_Overall (within several dB).
	if mh, bo := bandAvg(muteHollow, 0, 4000), bandAvg(boseOverall, 0, 4000); mh-bo > 8 {
		t.Errorf("MUTE_Hollow %.1f too far behind Bose_Overall %.1f", mh, bo)
	}
	if len(fig.Notes) != 4 {
		t.Error("fig12 should carry 4 headline notes")
	}
}

func TestFig13Shape(t *testing.T) {
	fig, err := Fig13(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	s := fig.Series[0]
	if len(s.X) == 0 {
		t.Fatal("empty response curve")
	}
	// Weak at the lowest measured frequency relative to mid band.
	var low, mid float64
	for i, f := range s.X {
		if f < 100 && low == 0 {
			low = s.Y[i]
		}
		if f >= 900 && f <= 1100 && mid == 0 {
			mid = s.Y[i]
		}
	}
	if low >= mid {
		t.Errorf("response should be weak below 100 Hz: low=%g mid=%g", low, mid)
	}
}

func TestFig14Shapes(t *testing.T) {
	c := quickCfg()
	fig, err := Fig14(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 8 {
		t.Fatalf("fig14 should have 8 series (4 sounds × 2 schemes), got %d", len(fig.Series))
	}
	// Every MUTE_Hollow series must show real cancellation.
	for _, s := range fig.Series {
		if len(s.X) == 0 {
			t.Fatalf("series %q empty", s.Name)
		}
	}
	for i := 0; i < len(fig.Series); i += 2 {
		mute := fig.Series[i]
		if avg := bandAvg(mute, 0, 4000); avg > -2 {
			t.Errorf("%s: MUTE_Hollow average %.1f dB, want < -2", mute.Name, avg)
		}
	}
}

func TestFig15EveryListenerPrefersMUTE(t *testing.T) {
	fig, err := Fig15(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("fig15 should have 4 series, got %d", len(fig.Series))
	}
	// Series come in MUTE/Bose pairs per sound.
	for p := 0; p < len(fig.Series); p += 2 {
		muteS, boseS := fig.Series[p], fig.Series[p+1]
		for i := range muteS.Y {
			if muteS.Y[i] < boseS.Y[i] {
				t.Errorf("%s listener %d: MUTE %.1f < Bose %.1f", muteS.Name, i+1, muteS.Y[i], boseS.Y[i])
			}
			if muteS.Y[i] < 1 || muteS.Y[i] > 5 {
				t.Errorf("rating out of range: %g", muteS.Y[i])
			}
		}
	}
}

func TestFig16MonotoneInLookahead(t *testing.T) {
	fig, err := Fig16(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("fig16 should have 4 series, got %d", len(fig.Series))
	}
	var avgs []float64
	for _, s := range fig.Series {
		avgs = append(avgs, bandAvg(s, 0, 4000))
	}
	// More lookahead (later series) must not be worse than the lower
	// bound, and the largest lookahead must clearly beat the lower bound.
	if avgs[3] >= avgs[0] {
		t.Errorf("max lookahead (%.1f dB) should beat lower bound (%.1f dB)", avgs[3], avgs[0])
	}
	for i := 1; i < 4; i++ {
		if avgs[i] > avgs[i-1]+1.5 {
			t.Errorf("lookahead step %d worsened cancellation: %v", i, avgs)
		}
	}
}

func TestFig17ProfilingHelps(t *testing.T) {
	fig, err := Fig17(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	avg := bandAvg(fig.Series[0], 0, 4000)
	if avg > 0.5 {
		t.Errorf("profiling should not hurt: additional cancellation %.1f dB", avg)
	}
	if len(fig.Notes) < 2 {
		t.Fatal("fig17 should report the controlled upper bound")
	}
}

func TestFig17ControlledUpperBound(t *testing.T) {
	gain, err := alternatingSourceGain(Config{Duration: 10}.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if gain < 1.5 {
		t.Errorf("controlled switching gain = %.1f dB, want > 1.5 (paper: ≈3)", gain)
	}
}

func TestFig18LookaheadSigns(t *testing.T) {
	fig, err := Fig18(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("fig18 should have 2 series, got %d", len(fig.Series))
	}
	peakLag := func(s Series) float64 {
		best := 0
		for i := range s.Y {
			if s.Y[i] > s.Y[best] {
				best = i
			}
		}
		return s.X[best]
	}
	if lag := peakLag(fig.Series[0]); lag <= 0 {
		t.Errorf("positive-lookahead case peaked at %.2f ms, want > 0", lag)
	}
	if lag := peakLag(fig.Series[1]); lag >= 0 {
		t.Errorf("negative-lookahead case peaked at %.2f ms, want < 0", lag)
	}
}

func TestFig19SelectionAccuracy(t *testing.T) {
	fig, err := Fig19(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	expect, got := fig.Series[0], fig.Series[1]
	if len(expect.Y) != len(got.Y) || len(expect.Y) == 0 {
		t.Fatal("selection series shape mismatch")
	}
	correct := 0
	for i := range expect.Y {
		if expect.Y[i] == got.Y[i] {
			correct++
		}
	}
	// The paper reports consistent selection; allow a small margin for
	// reverberant corner cases.
	if frac := float64(correct) / float64(len(expect.Y)); frac < 0.8 {
		t.Errorf("relay selection accuracy %.0f%%, want >= 80%%", frac*100)
	}
}

func TestLookaheadTable(t *testing.T) {
	fig, err := LookaheadTable(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	s := fig.Series[0]
	// Lookahead grows linearly with the gap; 1 m ≈ 2.94 ms.
	for i := 1; i < len(s.Y); i++ {
		if s.Y[i] <= s.Y[i-1] {
			t.Error("lookahead should grow with distance gap")
		}
	}
	for i, g := range s.X {
		want := g / 340 * 1000
		if diff := s.Y[i] - want; diff > 0.01 || diff < -0.01 {
			t.Errorf("gap %g m: lookahead %.3f ms, want %.3f", g, s.Y[i], want)
		}
	}
}

func TestAblationTapsImproves(t *testing.T) {
	fig, err := AblationTaps(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	s := fig.Series[0]
	if s.Y[len(s.Y)-1] >= s.Y[0] {
		t.Errorf("N=64 (%.1f dB) should beat N=1 (%.1f dB)", s.Y[len(s.Y)-1], s.Y[0])
	}
}

func TestAblationFMSNRTrend(t *testing.T) {
	fig, err := AblationFMSNR(Config{Duration: 4})
	if err != nil {
		t.Fatal(err)
	}
	s := fig.Series[0]
	// Cancellation at the cleanest channel should beat the noisiest.
	if s.Y[len(s.Y)-1] >= s.Y[0] {
		t.Errorf("clean channel (%.1f dB) should beat 10 dB SNR (%.1f dB)", s.Y[len(s.Y)-1], s.Y[0])
	}
}

func TestAblationNormalization(t *testing.T) {
	fig, err := AblationNormalization(Config{Duration: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series[0].Y) != 5 {
		t.Fatal("mu sweep size mismatch")
	}
	for _, v := range fig.Series[0].Y {
		if v > 3 {
			t.Errorf("some µ diverged: %v", fig.Series[0].Y)
			break
		}
	}
}

func TestByIDCoversAll(t *testing.T) {
	ids := []string{"fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19",
		"lookahead", "ablation-taps", "ablation-fmsnr", "ablation-nlms"}
	for _, id := range ids {
		if _, ok := ByID(id); !ok {
			t.Errorf("ByID(%q) missing", id)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("unknown id should not resolve")
	}
}
