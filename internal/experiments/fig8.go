package experiments

import (
	"mute/internal/audio"
	"mute/internal/metrics"
	"mute/internal/sim"
)

// Fig8 reproduces the convergence-timeline illustration (Figure 8): the
// residual error over time for (a) continuous noise — converge once, stay
// converged; (b) intermittent speech with a single adaptive filter —
// re-convergence transients at every restart; (c) speech with
// lookahead-aware profiling — smoother cancellation because cached filters
// are swapped in at transitions.
func Fig8(c Config) (*Figure, error) {
	c = c.Defaults()
	fig := &Figure{
		ID:     "fig8",
		Title:  "Convergence timelines: continuous noise vs speech vs profiled speech",
		XLabel: "Time (s)",
		YLabel: "Residual power (dB)",
	}
	window := int(0.25 * c.SampleRate)
	// Per-window cancellation depth (residual vs open ear) rather than raw
	// residual power: an intermittent source swings the raw power by tens
	// of dB regardless of filter quality, hiding the convergence story.
	timeline := func(r *sim.Result) (Series, error) {
		on, err := metrics.NewResidualTimeline(r.On, c.SampleRate, window)
		if err != nil {
			return Series{}, err
		}
		open, err := metrics.NewResidualTimeline(r.Open, c.SampleRate, window)
		if err != nil {
			return Series{}, err
		}
		s := Series{}
		for i := range on.Times {
			if open.PowersDB[i] < -60 {
				continue // near-silent window: depth undefined
			}
			s.X = append(s.X, on.Times[i])
			s.Y = append(s.Y, on.PowersDB[i]-open.PowersDB[i])
		}
		return s, nil
	}

	// (b)/(c) Sentence speech, single filter vs profiling.
	speechRun := func(prof bool) (*sim.Result, error) {
		p := sim.DefaultParams(sim.DefaultScene(
			audio.NewSentenceSpeech(c.Seed+6, audio.MaleVoice, c.SampleRate, c.NoiseAmp*3)))
		p.Duration = c.Duration
		p.Mu = 0.02
		p.Profiling = prof
		p.ProfileWindow = 1024
		p.ProfileHop = 256
		p.ProfileThreshold = 0.45
		p.MaxProfiles = 4
		return sim.Run(p, sim.MUTEHollow)
	}
	// The three timelines are independent runs; fan them out.
	runs := []func() (*sim.Result, error){
		// (a) Continuous wide-band noise.
		func() (*sim.Result, error) {
			pa := sim.DefaultParams(sim.DefaultScene(audio.NewWhiteNoise(c.Seed, c.SampleRate, c.NoiseAmp)))
			pa.Duration = c.Duration
			pa.Mu = 0.02
			return sim.Run(pa, sim.MUTEHollow)
		},
		func() (*sim.Result, error) { return speechRun(false) },
		func() (*sim.Result, error) { return speechRun(true) },
	}
	names := []string{"(a) Continuous noise", "(b) Speech, single filter", "(c) Speech, profiling"}
	series := make([]Series, len(runs))
	results := make([]*sim.Result, len(runs))
	err := parallelFor(c.Workers, len(runs), func(i int) error {
		r, err := runs[i]()
		if err != nil {
			return err
		}
		s, err := timeline(r)
		if err != nil {
			return err
		}
		s.Name = names[i]
		series[i] = s
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	sa, sb, sc := series[0], series[1], series[2]
	rc := results[2]

	fig.Series = []Series{sa, sb, sc}
	meanOf := func(s Series) float64 {
		var mean float64
		n := 0
		for i, y := range s.Y {
			if s.X[i] > 1 { // skip initial convergence
				mean += y
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return mean / float64(n)
	}
	fig.Notes = append(fig.Notes,
		note("steady-state cancellation depth: continuous %.1f dB, speech single-filter %.1f dB, speech profiled %.1f dB (%d predictive switches)",
			meanOf(sa), meanOf(sb), meanOf(sc), rc.Switches),
		note("the paper's Figure 8 contrast (large re-convergence transients without profiling) is sharpest with slow plain LMS; see fig17's controlled upper bound"),
	)
	return fig, nil
}
