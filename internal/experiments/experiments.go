// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5). Each Fig* function runs the corresponding
// experiment on the simulator and returns structured series that
// cmd/mutebench renders as tables/CSV and that the root benchmark suite
// wraps as testing.B benchmarks.
//
// Absolute decibel values differ from the paper (our substrate is a room
// simulator, not the authors' testbed); the assertions that matter are the
// shapes: who wins, in which band, and how trends move with lookahead.
package experiments

import (
	"fmt"

	"mute/internal/audio"
	"mute/internal/metrics"
	"mute/internal/sim"
	"mute/internal/telemetry"
)

// Series is one labeled curve or row group of a figure.
type Series struct {
	// Name labels the curve (e.g. "MUTE_Hollow").
	Name string
	// X holds the independent variable (frequency in Hz, user ID, ...).
	X []float64
	// Y holds the measured values (cancellation dB, rating stars, ...).
	Y []float64
}

// Figure is a regenerated experiment result.
type Figure struct {
	// ID is the paper's figure number, e.g. "fig12".
	ID string
	// Title describes the experiment.
	Title string
	// XLabel and YLabel name the axes.
	XLabel, YLabel string
	// Series holds the curves in plot order.
	Series []Series
	// Notes carries derived headline numbers (e.g. band averages).
	Notes []string
}

// Config carries the common experiment knobs.
type Config struct {
	// SampleRate is the DSP rate (default 8000).
	SampleRate float64
	// Duration is the simulated seconds per run (default 12).
	Duration float64
	// Seed drives all randomness.
	Seed uint64
	// UseFMLink routes reference audio through the full FM chain.
	UseFMLink bool
	// NoiseAmp is the source amplitude (default 0.5).
	NoiseAmp float64
	// Bands is the number of spectrum points reported (default 32).
	Bands int
	// Workers bounds the experiment worker pool: independent scheme runs
	// within a figure — and whole figures within All — fan out across this
	// many goroutines. 0 selects one worker per CPU (DefaultWorkers); 1
	// forces fully sequential execution. Results are bit-identical for any
	// value because every run seeds its own generators (see parallelFor).
	Workers int
	// Telemetry, when non-nil, aggregates the sweep's pipeline counters.
	// Each task writes to its own per-run registry and the parent merges
	// them in task order, so the aggregate (timers aside, which carry wall
	// clock) is deterministic for any Workers value — and enabling it
	// never changes a figure's numbers (result neutrality, enforced by
	// TestTelemetryResultNeutral).
	Telemetry *telemetry.Registry
	// Trace, when non-nil, receives every simulation run's per-stage
	// events (see telemetry.Trace). Event timestamps ride the sample
	// clock, but with Workers > 1 events from concurrent runs interleave
	// in completion order — set Workers to 1 for a reproducible stream.
	Trace *telemetry.Trace
}

// Defaults fills unset fields.
func (c Config) Defaults() Config {
	if c.SampleRate == 0 {
		c.SampleRate = 8000
	}
	if c.Duration == 0 {
		c.Duration = 12
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.NoiseAmp == 0 {
		c.NoiseAmp = 0.5
	}
	if c.Bands == 0 {
		c.Bands = 32
	}
	if c.Workers == 0 {
		c.Workers = DefaultWorkers()
	}
	return c
}

// runScheme simulates one scheme on a fresh generator built by gen.
func runScheme(c Config, scheme sim.Scheme, gen func() audio.Generator, mutate func(*sim.Params)) (*sim.Result, error) {
	p := sim.DefaultParams(sim.DefaultScene(gen()))
	p.Duration = c.Duration
	p.UseFMLink = c.UseFMLink
	p.Seed = c.Seed
	p.Trace = c.Trace
	if mutate != nil {
		mutate(&p)
	}
	return sim.Run(p, scheme)
}

// spectrumSeries converts a result into a banded cancellation curve.
func spectrumSeries(name string, r *sim.Result, bands int) (Series, error) {
	cs, err := metrics.NewCancellationSpectrum(
		sim.SteadyState(r.Open), sim.SteadyState(r.On), r.SampleRate, 1024)
	if err != nil {
		return Series{}, err
	}
	x, y := cs.BandTable(bands, r.SampleRate/2)
	return Series{Name: name, X: x, Y: y}, nil
}

// activeSeries converts a result into the active-only (On vs Off) curve —
// the Bose_Active quantity.
func activeSeries(name string, r *sim.Result, bands int) (Series, error) {
	cs, err := metrics.NewCancellationSpectrum(
		sim.SteadyState(r.Off), sim.SteadyState(r.On), r.SampleRate, 1024)
	if err != nil {
		return Series{}, err
	}
	x, y := cs.BandTable(bands, r.SampleRate/2)
	return Series{Name: name, X: x, Y: y}, nil
}

// bandAvg averages a series over [lo, hi] on the X axis.
func bandAvg(s Series, lo, hi float64) float64 {
	var sum float64
	var n int
	for i, x := range s.X {
		if x >= lo && x < hi {
			sum += s.Y[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func note(format string, args ...any) string { return fmt.Sprintf(format, args...) }
