package experiments

import (
	"time"

	"mute/internal/audio"
	"mute/internal/sim"
)

// fdafBlockSizes are the partition sizes the sweep covers. Each block of B
// samples spends B−1 samples of lookahead on block latency, so the sweep is
// the block-size-vs-lookahead tradeoff made measurable: larger blocks buy
// throughput (fewer, bigger FFTs) at the cost of non-causal taps.
var fdafBlockSizes = []int{8, 16, 32, 64}

// FdafSweep compares the default time-domain LANC against the partitioned
// frequency-domain canceller (Params.BlockFDAF) across block sizes, on the
// MUTE_Hollow scheme under wide-band white noise. Two series come back:
// cancellation in dB (deterministic, like every other figure) and the
// realtime factor — simulated seconds per wall-clock second, single run,
// which necessarily varies with the host and with Workers (concurrent runs
// share cores). Notes carry the time-domain baseline for both quantities.
func FdafSweep(c Config) (*Figure, error) {
	c = c.Defaults()
	gen := func() audio.Generator { return audio.NewWhiteNoise(c.Seed, c.SampleRate, c.NoiseAmp) }
	fig := &Figure{
		ID:     "fdaf",
		Title:  "Partitioned frequency-domain LANC vs block size",
		XLabel: "Block size (samples)",
		YLabel: "Cancellation (dB) / realtime factor (x)",
	}

	run := func(mutate func(*sim.Params)) (db, rtf float64, err error) {
		start := time.Now()
		r, err := runScheme(c, sim.MUTEHollow, gen, mutate)
		wall := time.Since(start)
		if err != nil {
			return 0, 0, err
		}
		db, err = r.CancellationDB(50, 4000)
		if err != nil {
			return 0, 0, err
		}
		return db, c.Duration / wall.Seconds(), nil
	}

	tdDB, tdRTF, err := run(nil)
	if err != nil {
		return nil, err
	}

	dbs := make([]float64, len(fdafBlockSizes))
	rtfs := make([]float64, len(fdafBlockSizes))
	err = parallelFor(c.Workers, len(fdafBlockSizes), func(i int) error {
		b := fdafBlockSizes[i]
		db, rtf, err := run(func(p *sim.Params) {
			p.BlockFDAF = true
			p.BlockSize = b
		})
		if err != nil {
			return err
		}
		dbs[i] = db
		rtfs[i] = rtf
		return nil
	})
	if err != nil {
		return nil, err
	}

	xs := make([]float64, len(fdafBlockSizes))
	for i, b := range fdafBlockSizes {
		xs[i] = float64(b)
	}
	fig.Series = []Series{
		{Name: "FDAF_dB", X: xs, Y: dbs},
		{Name: "FDAF_realtime_x", X: xs, Y: rtfs},
	}
	fig.Notes = append(fig.Notes,
		note("time-domain baseline: %.1f dB at %.1fx realtime", tdDB, tdRTF),
		note("each block of B samples spends B-1 samples of lookahead on block latency (budget entry fdaf.block_latency)"),
	)
	return fig, nil
}
