package experiments

import "mute/internal/sim"

// Fig13 reproduces the combined frequency response of the cheap anti-noise
// speaker and microphone (Figure 13): weak below ~100 Hz — the reason the
// paper's prototype loses cancellation at very low frequency — and rolling
// off toward Nyquist.
func Fig13(c Config) (*Figure, error) {
	c = c.Defaults()
	tr, err := sim.NewTransducer(c.SampleRate)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "fig13",
		Title:  "Combined anti-noise speaker + microphone frequency response",
		XLabel: "Frequency (Hz)",
		YLabel: "Response (linear)",
	}
	s := Series{Name: "Frequency Response"}
	step := c.SampleRate / 2 / float64(c.Bands*2)
	for f := step; f < c.SampleRate/2; f += step {
		s.X = append(s.X, f)
		s.Y = append(s.Y, tr.Response(f, c.SampleRate))
	}
	fig.Series = []Series{s}
	lo := tr.Response(60, c.SampleRate)
	mid := tr.Response(1000, c.SampleRate)
	fig.Notes = append(fig.Notes,
		note("response at 60 Hz = %.3f vs 1 kHz = %.3f (weak low-frequency response, as in the paper)", lo, mid))
	return fig, nil
}
