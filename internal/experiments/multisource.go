package experiments

import (
	"mute/internal/acoustics"
	"mute/internal/audio"
	"mute/internal/sim"
)

// MultiSource implements and measures the paper's Section 6 multi-source
// direction: two independent wide-band sources play simultaneously from
// different positions. A single relay/reference cannot cancel the mixture;
// one relay per source with a multi-reference LANC can.
func MultiSource(c Config) (*Figure, error) {
	c = c.Defaults()
	makeScene := func() sim.Scene {
		scene := sim.DefaultScene(audio.NewWhiteNoise(c.Seed, c.SampleRate, c.NoiseAmp*0.8))
		scene.Sources = append(scene.Sources, sim.Source{
			Pos: acoustics.Point{X: 1.0, Y: 3.5, Z: 1.5},
			Gen: audio.NewWhiteNoise(c.Seed+100, c.SampleRate, c.NoiseAmp*0.8),
		})
		return scene
	}
	fig := &Figure{
		ID:     "multisource",
		Title:  "Two simultaneous noise sources: single vs multi-reference LANC",
		XLabel: "Configuration (0 = single relay, 1 = relay per source)",
		YLabel: "Full-band cancellation (dB)",
	}
	base := sim.DefaultParams(makeScene())
	base.Duration = c.Duration
	base.Seed = c.Seed
	single, err := sim.Run(base, sim.MUTEHollow)
	if err != nil {
		return nil, err
	}
	sdb, err := single.CancellationDB(50, 4000)
	if err != nil {
		return nil, err
	}
	base2 := sim.DefaultParams(makeScene())
	base2.Duration = c.Duration
	base2.Seed = c.Seed
	multi, err := sim.RunMultiRelay(sim.MultiRelayParams{
		Base: base2,
		RelayPositions: []acoustics.Point{
			{X: 1.0, Y: 2.0, Z: 1.5},
			{X: 1.2, Y: 3.3, Z: 1.5},
		},
	})
	if err != nil {
		return nil, err
	}
	mdb, err := multi.CancellationDB(50, 4000)
	if err != nil {
		return nil, err
	}
	fig.Series = []Series{{Name: "Cancellation", X: []float64{0, 1}, Y: []float64{sdb, mdb}}}
	fig.Notes = append(fig.Notes,
		note("single reference %.1f dB vs multi-reference %.1f dB on two simultaneous sources (paper: future work, 'one microphone for each noise channel')", sdb, mdb))
	return fig, nil
}
