package experiments

import (
	"mute/internal/acoustics"
	"mute/internal/audio"
	"mute/internal/sim"
)

// MultiSource implements and measures the paper's Section 6 multi-source
// direction: two independent wide-band sources play simultaneously from
// different positions. A single relay/reference cannot cancel the mixture;
// one relay per source with a multi-reference LANC can.
func MultiSource(c Config) (*Figure, error) {
	c = c.Defaults()
	makeScene := func() sim.Scene {
		scene := sim.DefaultScene(audio.NewWhiteNoise(c.Seed, c.SampleRate, c.NoiseAmp*0.8))
		scene.Sources = append(scene.Sources, sim.Source{
			Pos: acoustics.Point{X: 1.0, Y: 3.5, Z: 1.5},
			Gen: audio.NewWhiteNoise(c.Seed+100, c.SampleRate, c.NoiseAmp*0.8),
		})
		return scene
	}
	fig := &Figure{
		ID:     "multisource",
		Title:  "Two simultaneous noise sources: single vs multi-reference LANC",
		XLabel: "Configuration (0 = single relay, 1 = relay per source)",
		YLabel: "Full-band cancellation (dB)",
	}
	// Single-relay and multi-relay configurations are independent; each
	// builds its own scene from explicit seeds.
	dbs := make([]float64, 2)
	err := parallelFor(c.Workers, 2, func(i int) error {
		p := sim.DefaultParams(makeScene())
		p.Duration = c.Duration
		p.Seed = c.Seed
		var r *sim.Result
		var err error
		if i == 0 {
			r, err = sim.Run(p, sim.MUTEHollow)
		} else {
			r, err = sim.RunMultiRelay(sim.MultiRelayParams{
				Base: p,
				RelayPositions: []acoustics.Point{
					{X: 1.0, Y: 2.0, Z: 1.5},
					{X: 1.2, Y: 3.3, Z: 1.5},
				},
			})
		}
		if err != nil {
			return err
		}
		dbs[i], err = r.CancellationDB(50, 4000)
		return err
	})
	if err != nil {
		return nil, err
	}
	sdb, mdb := dbs[0], dbs[1]
	fig.Series = []Series{{Name: "Cancellation", X: []float64{0, 1}, Y: []float64{sdb, mdb}}}
	fig.Notes = append(fig.Notes,
		note("single reference %.1f dB vs multi-reference %.1f dB on two simultaneous sources (paper: future work, 'one microphone for each noise channel')", sdb, mdb))
	return fig, nil
}
