package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"

	"mute/internal/telemetry"
)

// DefaultWorkers returns the worker-pool size used when Config.Workers is
// unset: one worker per available CPU.
func DefaultWorkers() int {
	return runtime.GOMAXPROCS(0)
}

// parallelFor runs fn(0..n-1) on a bounded pool of workers and returns the
// first error (by task index, not completion order, so failures are
// deterministic). With workers <= 1 it degrades to a plain sequential loop
// — the reference execution order that the parallel path must match.
//
// Determinism contract: every task writes only to its own index of a
// pre-sized result slice and derives all randomness from explicit seeds, so
// the assembled results are identical whatever the interleaving. The only
// shared mutable state tasks may touch is the acoustics RIR cache, which is
// value-deterministic (any execution order caches the same taps).
func parallelFor(workers, n int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// telemetryChildren allocates one per-task registry per task when the
// parent is enabled (nil otherwise — tasks must tolerate a nil slice).
// Pairing it with mergeTelemetry keeps the aggregate deterministic under
// the worker pool: tasks never share a registry, and the merge happens in
// task order after every task has finished.
func telemetryChildren(parent *telemetry.Registry, n int) []*telemetry.Registry {
	if parent == nil {
		return nil
	}
	kids := make([]*telemetry.Registry, n)
	for i := range kids {
		kids[i] = telemetry.NewRegistry()
	}
	return kids
}

// mergeTelemetry folds per-task registries into the parent in task order.
func mergeTelemetry(parent *telemetry.Registry, kids []*telemetry.Registry) {
	if parent == nil {
		return
	}
	for _, kid := range kids {
		parent.Merge(kid)
	}
}

// childTelemetry returns the i-th per-task registry, or nil when
// telemetry is off.
func childTelemetry(kids []*telemetry.Registry, i int) *telemetry.Registry {
	if kids == nil {
		return nil
	}
	return kids[i]
}
