package experiments

import (
	"mute/internal/acoustics"
	"mute/internal/audio"
	"mute/internal/dsp"
	"mute/internal/relaysel"
)

// Fig19 reproduces the multi-relay selection map (Figure 19): three relays
// on the room's edges, the MUTE client at the center, and a grid of noise
// source positions. For each position the client must pick the relay
// offering maximum positive lookahead — the relay nearest the source —
// or no relay at all when the source is closest to the client itself.
func Fig19(c Config) (*Figure, error) {
	c = c.Defaults()
	room := acoustics.DefaultRoom()
	client := acoustics.Point{X: 2.5, Y: 2.0, Z: 1.2}
	relays := []acoustics.Point{
		{X: 0.4, Y: 2.0, Z: 1.5}, // relay 1: west wall
		{X: 2.5, Y: 3.6, Z: 1.5}, // relay 2: north wall
		{X: 4.6, Y: 0.4, Z: 1.5}, // relay 3: southeast corner
	}
	fs := c.SampleRate
	n := int(1.5 * fs)
	maxLag := int(0.012 * fs)

	// Source grid: positions around the room perimeter region.
	var sources []acoustics.Point
	for _, x := range []float64{0.7, 1.6, 2.5, 3.4, 4.3} {
		for _, y := range []float64{0.7, 2.0, 3.3} {
			sources = append(sources, acoustics.Point{X: x, Y: y, Z: 1.4})
		}
	}

	fig := &Figure{
		ID:     "fig19",
		Title:  "Relay selection vs noise source position (3 relays, client center)",
		XLabel: "Source index",
		YLabel: "Selected relay (0 = none)",
	}
	// Every grid position is an independent selection trial (per-position
	// RNG seed); fan the grid out and reduce in index order.
	type trial struct {
		expected int
		selected int
	}
	trials := make([]trial, len(sources))
	err := parallelFor(c.Workers, len(sources), func(i int) error {
		srcPos := sources[i]
		wave := audio.Render(audio.NewWhiteNoise(c.Seed+uint64(i), fs, c.NoiseAmp), n)
		// Local signal at the client.
		hLocal, err := room.ImpulseResponse(srcPos, client, fs)
		if err != nil {
			return err
		}
		local := dsp.ConvolveSame(wave, hLocal)
		// Forwarded signal per relay.
		var forwarded [][]float64
		for _, rp := range relays {
			h, err := room.ImpulseResponse(srcPos, rp, fs)
			if err != nil {
				return err
			}
			forwarded = append(forwarded, dsp.ConvolveSame(wave, h))
		}
		sel, err := relaysel.SelectRelay(forwarded, local, maxLag, 1, 0.05)
		if err != nil {
			return err
		}
		// Ground truth: the nearest relay if it beats the client's own
		// distance, else none.
		expected := -1
		bestDist := srcPos.Dist(client)
		for ri, rp := range relays {
			if d := srcPos.Dist(rp); d < bestDist {
				bestDist = d
				expected = ri
			}
		}
		trials[i] = trial{expected: expected, selected: sel.Best}
		return nil
	})
	if err != nil {
		return nil, err
	}
	expectSeries := Series{Name: "Expected"}
	gotSeries := Series{Name: "Selected"}
	correct := 0
	for i, tr := range trials {
		if tr.selected == tr.expected {
			correct++
		}
		expectSeries.X = append(expectSeries.X, float64(i))
		expectSeries.Y = append(expectSeries.Y, float64(tr.expected+1))
		gotSeries.X = append(gotSeries.X, float64(i))
		gotSeries.Y = append(gotSeries.Y, float64(tr.selected+1))
	}
	fig.Series = []Series{expectSeries, gotSeries}
	fig.Notes = append(fig.Notes,
		note("correct relay association in %d/%d source positions (paper: consistent selection, no relay when source nearest the client)",
			correct, len(sources)))
	return fig, nil
}
