package experiments

import (
	"mute/internal/acoustics"
)

// LookaheadTable regenerates the Equation 4 illustration: lookahead time
// as a function of the distance gap (d_e − d_r) between the ear and the
// relay, including the paper's headline "1 m ≈ 3 ms, 100× today's
// headphones" data point.
func LookaheadTable(c Config) (*Figure, error) {
	c = c.Defaults()
	fig := &Figure{
		ID:     "lookahead",
		Title:  "Lookahead vs relay placement (Equation 4)",
		XLabel: "d_e - d_r (m)",
		YLabel: "Lookahead (ms)",
	}
	s := Series{Name: "Lookahead"}
	for _, gap := range []float64{0.25, 0.5, 1, 2, 3, 5} {
		source := acoustics.Point{}
		relay := acoustics.Point{X: 1}
		ear := acoustics.Point{X: 1 + gap}
		la := acoustics.Lookahead(source, relay, ear) * 1000
		s.X = append(s.X, gap)
		s.Y = append(s.Y, la)
	}
	fig.Series = []Series{s}
	oneMeter := acoustics.Lookahead(acoustics.Point{}, acoustics.Point{X: 1}, acoustics.Point{X: 2}) * 1000
	fig.Notes = append(fig.Notes,
		note("1 m gap = %.2f ms lookahead (paper: ≈3 ms, \"100× larger than today's ANC headphones\")", oneMeter))
	return fig, nil
}
