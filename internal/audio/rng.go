// Package audio provides deterministic ambient-sound generators and WAV
// file I/O for the MUTE reproduction. The evaluation sounds of the paper —
// wide-band white noise, machine hum, male and female speech, music, and
// construction noise (Figures 12 and 14) — are synthesized here with
// statistics that match what the cancellation pipeline cares about:
// bandwidth, spectral tilt, predictability, and intermittency.
//
// Every generator is seeded explicitly and produces identical output for
// identical seeds, making all experiments bit-reproducible.
package audio

import "math"

// RNG is a small, fast deterministic generator (SplitMix64) used by all
// audio synthesis. It is not cryptographically secure and is kept separate
// from math/rand so the exact stream is stable across Go releases.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Uniform returns a uniform value in [-1, 1).
func (r *RNG) Uniform() float64 { return r.Float64()*2 - 1 }

// Norm returns a standard normal deviate (Box–Muller).
func (r *RNG) Norm() float64 {
	// Reject u1 == 0 to avoid log(0).
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Intn returns a uniform int in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("audio: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform value in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}
