package audio

import (
	"math"

	"mute/internal/dsp"
)

// Voice selects the glottal pitch range of the synthetic talker.
type Voice int

// Available voices. The paper evaluates both a male and a female talker
// (Figure 14); the ranges below follow typical adult fundamental
// frequencies.
const (
	MaleVoice   Voice = iota // f0 ~ 85-155 Hz
	FemaleVoice              // f0 ~ 165-255 Hz
)

// String names the voice.
func (v Voice) String() string {
	if v == FemaleVoice {
		return "female"
	}
	return "male"
}

func (v Voice) pitchRange() (lo, hi float64) {
	if v == FemaleVoice {
		return 165, 255
	}
	return 85, 155
}

// vowel formant targets (F1, F2, F3) in Hz for a handful of vowels; values
// are textbook averages. The synthesizer hops between them per syllable.
var vowelFormants = [][3]float64{
	{730, 1090, 2440}, // /a/
	{270, 2290, 3010}, // /i/
	{300, 870, 2240},  // /u/
	{530, 1840, 2480}, // /e/
	{570, 840, 2410},  // /o/
}

// Speech synthesizes intermittent human speech: voiced syllables built
// from a pulse train shaped by formant resonators, unvoiced fricative
// bursts, and — crucially for the paper's Figure 17 experiment — random
// inter-sentence pauses that force an ANC filter to re-converge unless it
// can predict the transition.
type Speech struct {
	rng  *RNG
	rate float64
	amp  float64
	v    Voice

	// Segment state machine.
	mode      int // 0 pause, 1 voiced, 2 unvoiced
	remaining int // samples left in current segment

	// Voiced synthesis state.
	f0       float64
	phase    float64
	formants *dsp.BiquadChain
	// Unvoiced synthesis state.
	fric *dsp.FIRFilter

	// Speech/pause duty cycle control.
	PauseProb float64 // probability a new segment is a pause

	// Sentence mode groups syllables into multi-second utterances with
	// clear inter-sentence gaps, matching how the paper's intermittent
	// talker behaves in the profiling experiment.
	sentenceMode bool
	utterRemain  int // samples left in the current utterance (sentence mode)
	gapRemain    int // samples left in the current inter-sentence gap
}

// NewSpeech creates a talker with the given voice. amp scales the output.
func NewSpeech(seed uint64, v Voice, sampleRate, amp float64) *Speech {
	s := &Speech{
		rng:       NewRNG(seed),
		rate:      sampleRate,
		amp:       amp,
		v:         v,
		PauseProb: 0.3,
	}
	s.pickSegment()
	return s
}

// NewContinuousSpeech creates a talker that never pauses — useful when the
// experiment wants steady speech spectra without intermittency.
func NewContinuousSpeech(seed uint64, v Voice, sampleRate, amp float64) *Speech {
	s := NewSpeech(seed, v, sampleRate, amp)
	s.PauseProb = 0
	s.pickSegment()
	return s
}

// NewSentenceSpeech creates a talker that alternates multi-second
// utterances (no intra-sentence pauses) with 0.5–1.5 s silent gaps — the
// sound profile that LANC's predictive switching targets (Figure 17).
func NewSentenceSpeech(seed uint64, v Voice, sampleRate, amp float64) *Speech {
	s := NewSpeech(seed, v, sampleRate, amp)
	s.PauseProb = 0
	s.sentenceMode = true
	s.utterRemain = int(s.rng.Range(1.2, 2.5) * sampleRate)
	s.pickSegment()
	return s
}

func (s *Speech) pickSegment() {
	r := s.rng.Float64()
	switch {
	case r < s.PauseProb:
		s.mode = 0
		// Pauses 0.2-1.2 s, mimicking inter-sentence gaps.
		s.remaining = int(s.rng.Range(0.2, 1.2) * s.rate)
	case r < s.PauseProb+0.55:
		s.mode = 1
		s.remaining = int(s.rng.Range(0.08, 0.30) * s.rate) // syllable
		lo, hi := s.v.pitchRange()
		s.f0 = s.rng.Range(lo, hi)
		vf := vowelFormants[s.rng.Intn(len(vowelFormants))]
		var secs []*dsp.Biquad
		for _, f := range vf {
			if f >= s.rate/2 {
				continue
			}
			bq, err := dsp.NewPeakBiquad(f, s.rate, 4, 18)
			if err == nil {
				secs = append(secs, bq)
			}
		}
		s.formants = dsp.NewBiquadChain(secs...)
	default:
		s.mode = 2
		s.remaining = int(s.rng.Range(0.04, 0.12) * s.rate) // fricative
		// Fricatives concentrate energy at high frequency.
		cut := s.rate * 0.25
		h, err := dsp.HighPassFIR(cut, s.rate, 31, dsp.Hamming)
		if err == nil {
			s.fric = dsp.NewFIRFilter(h)
		} else {
			s.fric = nil
		}
	}
}

// Next returns the next speech sample.
func (s *Speech) Next() float64 {
	if s.sentenceMode {
		if s.gapRemain > 0 {
			s.gapRemain--
			return 0
		}
		if s.utterRemain <= 0 {
			s.gapRemain = int(s.rng.Range(0.5, 1.5) * s.rate)
			s.utterRemain = int(s.rng.Range(1.2, 2.5) * s.rate)
			return 0
		}
		s.utterRemain--
	}
	if s.remaining <= 0 {
		s.pickSegment()
	}
	s.remaining--
	switch s.mode {
	case 1: // voiced
		// Glottal pulse train: narrow impulses at f0 plus a weak sawtooth
		// component, shaped by formant resonators.
		s.phase += s.f0 / s.rate
		var excite float64
		if s.phase >= 1 {
			s.phase -= 1
			excite = 1
		}
		excite += 0.2*s.phase - 0.1 // sawtooth tilt
		excite += 0.02 * s.rng.Uniform()
		out := s.formants.Process(excite)
		return s.amp * 0.9 * out
	case 2: // unvoiced
		n := s.rng.Uniform()
		if s.fric != nil {
			n = s.fric.Process(n)
		}
		return s.amp * 0.8 * n
	default: // pause
		return 0
	}
}

// SampleRate implements Generator.
func (s *Speech) SampleRate() float64 { return s.rate }

// Active reports whether the talker is currently producing sound (not in a
// pause segment or inter-sentence gap). Profiling experiments use it as
// ground truth.
func (s *Speech) Active() bool {
	if s.sentenceMode && s.gapRemain > 0 {
		return false
	}
	return s.mode != 0
}

// Music synthesizes a deterministic melodic/harmonic stream: a note
// sequence drawn from a pentatonic scale, each note carrying several
// harmonics with an exponential decay envelope, over a soft broadband bed.
// Spectrally it is wide-band and non-stationary — the hard case for the
// conventional headphone baseline.
type Music struct {
	rng   *RNG
	rate  float64
	amp   float64
	tempo float64 // notes per second

	noteRemaining int
	oscPhases     [4]float64
	oscSteps      [4]float64
	env           float64
	bed           *PinkNoise
}

// NewMusic creates a music source. tempo is in notes per second
// (2-4 typical).
func NewMusic(seed uint64, sampleRate, amp, tempo float64) *Music {
	m := &Music{
		rng:   NewRNG(seed),
		rate:  sampleRate,
		amp:   amp,
		tempo: tempo,
		bed:   NewPinkNoise(seed+1, sampleRate, amp*0.05),
	}
	m.nextNote()
	return m
}

// A-minor pentatonic over two octaves.
var pentatonic = []float64{220, 261.63, 293.66, 329.63, 392, 440, 523.25, 587.33, 659.25, 784}

func (m *Music) nextNote() {
	f := pentatonic[m.rng.Intn(len(pentatonic))]
	for k := 0; k < 4; k++ {
		h := f * float64(k+1)
		if h >= m.rate/2 {
			h = 0
		}
		m.oscSteps[k] = 2 * math.Pi * h / m.rate
	}
	m.env = 1
	m.noteRemaining = int(m.rate / m.tempo)
}

// Next returns the next music sample.
func (m *Music) Next() float64 {
	if m.noteRemaining <= 0 {
		m.nextNote()
	}
	m.noteRemaining--
	var s float64
	for k := 0; k < 4; k++ {
		if m.oscSteps[k] == 0 {
			continue
		}
		m.oscPhases[k] += m.oscSteps[k]
		if m.oscPhases[k] > 2*math.Pi {
			m.oscPhases[k] -= 2 * math.Pi
		}
		s += math.Sin(m.oscPhases[k]) / float64(k+1)
	}
	s *= m.env
	m.env *= math.Exp(-2.5 / m.rate) // note decay
	return m.amp*0.4*s + m.bed.Next()
}

// SampleRate implements Generator.
func (m *Music) SampleRate() float64 { return m.rate }

// Babble layers several continuous talkers to model corridor conversation
// ambience (the motivating scenario of Figure 1).
type Babble struct {
	talkers []*Speech
	rate    float64
}

// NewBabble creates n overlapping talkers.
func NewBabble(seed uint64, n int, sampleRate, amp float64) *Babble {
	b := &Babble{rate: sampleRate}
	for i := 0; i < n; i++ {
		v := MaleVoice
		if i%2 == 1 {
			v = FemaleVoice
		}
		t := NewSpeech(seed+uint64(i)*7919, v, sampleRate, amp/float64(n))
		t.PauseProb = 0.15
		b.talkers = append(b.talkers, t)
	}
	return b
}

// Next returns the summed talker output.
func (b *Babble) Next() float64 {
	var s float64
	for _, t := range b.talkers {
		s += t.Next()
	}
	return s
}

// SampleRate implements Generator.
func (b *Babble) SampleRate() float64 { return b.rate }
