package audio

import (
	"testing"

	"mute/internal/dsp"
)

func TestTrafficSpectrum(t *testing.T) {
	g := NewTraffic(1, testRate, 0.6, 20)
	x := Render(g, 20*8000)
	psd, err := dsp.WelchPSD(x, testRate, 2048)
	if err != nil {
		t.Fatal(err)
	}
	// Rumble dominates low frequencies; pass-bys add mid-band hiss.
	low := psd.BandPower(20, 300)
	high := psd.BandPower(3000, 3900)
	if low < 5*high {
		t.Errorf("traffic should be rumble-dominated: low=%g high=%g", low, high)
	}
	if psd.BandPower(500, 2500) <= 0 {
		t.Error("pass-by hiss should add mid-band energy")
	}
}

func TestTrafficPassbysModulateLevel(t *testing.T) {
	g := NewTraffic(2, testRate, 0.8, 30)
	x := Render(g, 30*8000)
	// Per-second power should vary substantially (pass-bys vs gaps).
	var levels []float64
	for s := 0; s+8000 <= len(x); s += 8000 {
		levels = append(levels, dsp.Power(x[s:s+8000]))
	}
	minL, maxL := levels[0], levels[0]
	for _, v := range levels {
		if v < minL {
			minL = v
		}
		if v > maxL {
			maxL = v
		}
	}
	if maxL < 2*minL {
		t.Errorf("pass-bys should modulate the level: min=%g max=%g", minL, maxL)
	}
}

func TestTrafficDefaultDensity(t *testing.T) {
	g := NewTraffic(3, testRate, 0.5, 0) // 0 → default density
	x := Render(g, 8000)
	if dsp.Power(x) <= 0 {
		t.Error("traffic should produce sound")
	}
	if g.SampleRate() != testRate {
		t.Error("rate mismatch")
	}
}

func TestAnnouncementCycle(t *testing.T) {
	g := NewAnnouncement(4, testRate, 0.8)
	x := Render(g, 40*8000)
	// The cycle must include silence, chime (tonal ~880/659 Hz), and
	// speech. Check: substantial silent time AND substantial active time.
	frame := 1600
	var silent, active int
	for s := 0; s+frame <= len(x); s += frame {
		if dsp.Power(x[s:s+frame]) < 1e-8 {
			silent++
		} else {
			active++
		}
	}
	if silent < 5 {
		t.Errorf("announcements should leave silence between cycles, got %d silent frames", silent)
	}
	if active < 5 {
		t.Errorf("announcements should produce sound, got %d active frames", active)
	}
	// Chime energy near 880 Hz should be present somewhere.
	psd, err := dsp.WelchPSD(x, testRate, 4096)
	if err != nil {
		t.Fatal(err)
	}
	chime := psd.BandPower(840, 920)
	if chime <= 0 {
		t.Error("chime band should carry energy")
	}
	if g.SampleRate() != testRate {
		t.Error("rate mismatch")
	}
}
