package audio

import (
	"math"

	"mute/internal/dsp"
)

// This file synthesizes the ambient scenarios the paper's introduction
// motivates: overhead airport announcements (napping at airports) and road
// traffic (sound pollution in developing regions).

// Traffic models road noise: a continuous pink rumble low-passed to engine
// frequencies, plus vehicle pass-by events whose broadband hiss swells and
// fades over a few seconds.
type Traffic struct {
	rng    *RNG
	rate   float64
	amp    float64
	rumble *PinkNoise
	lp     *dsp.Biquad

	// Pass-by state.
	passPos   int // sample index within the active pass-by, -1 when idle
	passLen   int
	passGain  float64
	hiss      *WhiteNoise
	hissLP    *dsp.Biquad
	nextStart int // countdown to the next pass-by
}

// NewTraffic creates a road-noise source; density is vehicles per minute
// (6–30 typical).
func NewTraffic(seed uint64, sampleRate, amp, density float64) *Traffic {
	if density <= 0 {
		density = 12
	}
	lp, _ := dsp.NewLowPassBiquad(300, sampleRate, 0.7071)
	hlp, _ := dsp.NewLowPassBiquad(2500, sampleRate, 0.7071)
	t := &Traffic{
		rng:     NewRNG(seed),
		rate:    sampleRate,
		amp:     amp,
		rumble:  NewPinkNoise(seed+1, sampleRate, amp*0.5),
		lp:      lp,
		hiss:    NewWhiteNoise(seed+2, sampleRate, 1),
		hissLP:  hlp,
		passPos: -1,
	}
	t.scheduleNext(density)
	return t
}

func (t *Traffic) scheduleNext(density float64) {
	mean := 60.0 / density * t.rate
	t.nextStart = int(t.rng.Range(0.5, 1.5) * mean)
}

// Next returns the next traffic sample.
func (t *Traffic) Next() float64 {
	s := t.lp.Process(t.rumble.Next())
	if t.passPos < 0 {
		t.nextStart--
		if t.nextStart <= 0 {
			t.passPos = 0
			t.passLen = int(t.rng.Range(2, 5) * t.rate)
			t.passGain = t.rng.Range(0.4, 1.0) * t.amp
			t.scheduleNext(12)
		}
		return s
	}
	// Raised-cosine swell over the pass-by duration.
	frac := float64(t.passPos) / float64(t.passLen)
	env := 0.5 - 0.5*math.Cos(2*math.Pi*frac)
	s += t.passGain * env * t.hissLP.Process(t.hiss.Next())
	t.passPos++
	if t.passPos >= t.passLen {
		t.passPos = -1
	}
	return s
}

// SampleRate implements Generator.
func (t *Traffic) SampleRate() float64 { return t.rate }

// Announcement models public-address announcements: a two-tone chime, a
// sentence of continuous speech, then a long silence before the cycle
// repeats — the intermittent high-energy profile that benefits most from
// predictive filter switching.
type Announcement struct {
	rng   *RNG
	rate  float64
	amp   float64
	voice *Speech

	mode      int // 0 silence, 1 chime, 2 speech
	remaining int
	chimeT    float64
}

// NewAnnouncement creates a PA-announcement source.
func NewAnnouncement(seed uint64, sampleRate, amp float64) *Announcement {
	a := &Announcement{
		rng:   NewRNG(seed),
		rate:  sampleRate,
		amp:   amp,
		voice: NewContinuousSpeech(seed+1, FemaleVoice, sampleRate, amp),
	}
	a.mode = 0
	a.remaining = int(a.rng.Range(1, 3) * sampleRate)
	return a
}

// Next returns the next announcement sample.
func (a *Announcement) Next() float64 {
	if a.remaining <= 0 {
		switch a.mode {
		case 0: // silence → chime
			a.mode = 1
			a.remaining = int(1.2 * a.rate)
			a.chimeT = 0
		case 1: // chime → speech
			a.mode = 2
			a.remaining = int(a.rng.Range(3, 6) * a.rate)
		default: // speech → silence
			a.mode = 0
			a.remaining = int(a.rng.Range(4, 9) * a.rate)
		}
	}
	a.remaining--
	switch a.mode {
	case 1:
		// Two descending chime notes with decay.
		f := 880.0
		if a.chimeT > 0.6 {
			f = 659.25
		}
		phase := 2 * math.Pi * f * a.chimeT
		env := math.Exp(-3 * math.Mod(a.chimeT, 0.6))
		a.chimeT += 1 / a.rate
		return a.amp * 0.6 * env * math.Sin(phase)
	case 2:
		return a.voice.Next()
	default:
		return 0
	}
}

// SampleRate implements Generator.
func (a *Announcement) SampleRate() float64 { return a.rate }
