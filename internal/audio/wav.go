package audio

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// WriteWAV encodes mono float64 samples in [-1, 1] as a 16-bit PCM WAV
// stream. Samples outside the range are clipped.
func WriteWAV(w io.Writer, samples []float64, sampleRate int) error {
	if sampleRate <= 0 {
		return fmt.Errorf("audio: invalid sample rate %d", sampleRate)
	}
	dataLen := len(samples) * 2
	var hdr [44]byte
	copy(hdr[0:4], "RIFF")
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(36+dataLen))
	copy(hdr[8:12], "WAVE")
	copy(hdr[12:16], "fmt ")
	binary.LittleEndian.PutUint32(hdr[16:20], 16)                   // fmt chunk size
	binary.LittleEndian.PutUint16(hdr[20:22], 1)                    // PCM
	binary.LittleEndian.PutUint16(hdr[22:24], 1)                    // mono
	binary.LittleEndian.PutUint32(hdr[24:28], uint32(sampleRate))   // sample rate
	binary.LittleEndian.PutUint32(hdr[28:32], uint32(sampleRate*2)) // byte rate
	binary.LittleEndian.PutUint16(hdr[32:34], 2)                    // block align
	binary.LittleEndian.PutUint16(hdr[34:36], 16)                   // bits/sample
	copy(hdr[36:40], "data")
	binary.LittleEndian.PutUint32(hdr[40:44], uint32(dataLen))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("audio: write WAV header: %w", err)
	}
	buf := make([]byte, 2*len(samples))
	for i, s := range samples {
		if s > 1 {
			s = 1
		} else if s < -1 {
			s = -1
		}
		v := int16(math.Round(s * 32767))
		binary.LittleEndian.PutUint16(buf[2*i:], uint16(v))
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("audio: write WAV data: %w", err)
	}
	return nil
}

// ReadWAV decodes a mono or stereo 16-bit PCM WAV stream, returning mono
// float64 samples in [-1, 1] (stereo is averaged) and the sample rate.
func ReadWAV(r io.Reader) ([]float64, int, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, fmt.Errorf("audio: read RIFF header: %w", err)
	}
	if string(hdr[0:4]) != "RIFF" || string(hdr[8:12]) != "WAVE" {
		return nil, 0, fmt.Errorf("audio: not a RIFF/WAVE stream")
	}
	var (
		sampleRate int
		channels   int
		bits       int
		data       []byte
	)
	for {
		var chunk [8]byte
		if _, err := io.ReadFull(r, chunk[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				break
			}
			return nil, 0, fmt.Errorf("audio: read chunk header: %w", err)
		}
		id := string(chunk[0:4])
		size := binary.LittleEndian.Uint32(chunk[4:8])
		body := make([]byte, size)
		if _, err := io.ReadFull(r, body); err != nil {
			return nil, 0, fmt.Errorf("audio: read chunk %q: %w", id, err)
		}
		switch id {
		case "fmt ":
			if size < 16 {
				return nil, 0, fmt.Errorf("audio: fmt chunk too small (%d bytes)", size)
			}
			format := binary.LittleEndian.Uint16(body[0:2])
			if format != 1 {
				return nil, 0, fmt.Errorf("audio: unsupported WAV format %d (want PCM)", format)
			}
			channels = int(binary.LittleEndian.Uint16(body[2:4]))
			sampleRate = int(binary.LittleEndian.Uint32(body[4:8]))
			bits = int(binary.LittleEndian.Uint16(body[14:16]))
		case "data":
			data = body
		}
		if size%2 == 1 {
			// Chunks are word-aligned; consume the pad byte.
			var pad [1]byte
			if _, err := io.ReadFull(r, pad[:]); err != nil {
				break
			}
		}
		if data != nil && sampleRate != 0 {
			break
		}
	}
	if sampleRate == 0 {
		return nil, 0, fmt.Errorf("audio: missing fmt chunk")
	}
	if data == nil {
		return nil, 0, fmt.Errorf("audio: missing data chunk")
	}
	if bits != 16 {
		return nil, 0, fmt.Errorf("audio: unsupported bit depth %d (want 16)", bits)
	}
	if channels != 1 && channels != 2 {
		return nil, 0, fmt.Errorf("audio: unsupported channel count %d", channels)
	}
	frames := len(data) / (2 * channels)
	out := make([]float64, frames)
	for i := 0; i < frames; i++ {
		var acc float64
		for c := 0; c < channels; c++ {
			v := int16(binary.LittleEndian.Uint16(data[2*(i*channels+c):]))
			acc += float64(v) / 32767
		}
		out[i] = acc / float64(channels)
	}
	return out, sampleRate, nil
}
