package audio

import (
	"fmt"
	"math"

	"mute/internal/dsp"
)

// Generator produces an unbounded mono sample stream at a fixed rate.
// Implementations are deterministic given their construction parameters.
type Generator interface {
	// Next returns the next sample, nominally in [-1, 1].
	Next() float64
	// SampleRate returns the stream's sample rate in Hz.
	SampleRate() float64
}

// Render pulls n samples from g into a new slice.
func Render(g Generator, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// RenderSeconds pulls dur seconds of audio from g.
func RenderSeconds(g Generator, dur float64) []float64 {
	return Render(g, int(dur*g.SampleRate()))
}

// WhiteNoise is the paper's "most unpredictable" wide-band test signal
// (Figure 12): independent uniform samples, optionally band-limited.
type WhiteNoise struct {
	rng  *RNG
	rate float64
	amp  float64
	lp   *dsp.FIRFilter // nil when full band
}

// NewWhiteNoise creates a white-noise source with peak amplitude amp.
func NewWhiteNoise(seed uint64, sampleRate, amp float64) *WhiteNoise {
	return &WhiteNoise{rng: NewRNG(seed), rate: sampleRate, amp: amp}
}

// NewBandLimitedNoise creates white noise low-passed at cutoffHz.
func NewBandLimitedNoise(seed uint64, sampleRate, amp, cutoffHz float64) (*WhiteNoise, error) {
	h, err := dsp.LowPassFIR(cutoffHz, sampleRate, 63, dsp.Hamming)
	if err != nil {
		return nil, fmt.Errorf("audio: band-limited noise: %w", err)
	}
	return &WhiteNoise{rng: NewRNG(seed), rate: sampleRate, amp: amp, lp: dsp.NewFIRFilter(h)}, nil
}

// Next returns the next noise sample.
func (w *WhiteNoise) Next() float64 {
	s := w.rng.Uniform() * w.amp
	if w.lp != nil {
		s = w.lp.Process(s)
	}
	return s
}

// SampleRate implements Generator.
func (w *WhiteNoise) SampleRate() float64 { return w.rate }

// PinkNoise approximates 1/f noise with the Voss–McCartney multi-rate sum,
// a common model for broadband environmental rumble.
type PinkNoise struct {
	rng     *RNG
	rate    float64
	amp     float64
	rows    [16]float64
	counter uint64
	runsum  float64
}

// NewPinkNoise creates a pink-noise source with peak amplitude roughly amp.
func NewPinkNoise(seed uint64, sampleRate, amp float64) *PinkNoise {
	p := &PinkNoise{rng: NewRNG(seed), rate: sampleRate, amp: amp}
	for i := range p.rows {
		p.rows[i] = p.rng.Uniform()
		p.runsum += p.rows[i]
	}
	return p
}

// Next returns the next pink-noise sample.
func (p *PinkNoise) Next() float64 {
	p.counter++
	// Index of lowest set bit selects which row updates.
	n := p.counter
	row := 0
	for n&1 == 0 && row < len(p.rows)-1 {
		n >>= 1
		row++
	}
	p.runsum -= p.rows[row]
	p.rows[row] = p.rng.Uniform()
	p.runsum += p.rows[row]
	return p.amp * p.runsum / float64(len(p.rows))
}

// SampleRate implements Generator.
func (p *PinkNoise) SampleRate() float64 { return p.rate }

// Tone is a pure sinusoid.
type Tone struct {
	rate  float64
	amp   float64
	phase float64
	step  float64
}

// NewTone creates a sinusoid at freqHz with the given amplitude and initial
// phase (radians).
func NewTone(freqHz, sampleRate, amp, phase float64) *Tone {
	return &Tone{rate: sampleRate, amp: amp, phase: phase, step: 2 * math.Pi * freqHz / sampleRate}
}

// Next returns the next tone sample.
func (t *Tone) Next() float64 {
	s := t.amp * math.Sin(t.phase)
	t.phase += t.step
	if t.phase > 2*math.Pi {
		t.phase -= 2 * math.Pi
	}
	return s
}

// SampleRate implements Generator.
func (t *Tone) SampleRate() float64 { return t.rate }

// Chirp sweeps linearly from f0 to f1 over dur seconds, then repeats.
// Useful for measuring frequency responses (Figure 13).
type Chirp struct {
	rate   float64
	amp    float64
	f0, f1 float64
	dur    float64
	t      float64
	phase  float64
}

// NewChirp creates a repeating linear sweep.
func NewChirp(f0, f1, durSec, sampleRate, amp float64) *Chirp {
	return &Chirp{rate: sampleRate, amp: amp, f0: f0, f1: f1, dur: durSec}
}

// Next returns the next chirp sample.
func (c *Chirp) Next() float64 {
	frac := c.t / c.dur
	f := c.f0 + (c.f1-c.f0)*frac
	s := c.amp * math.Sin(c.phase)
	c.phase += 2 * math.Pi * f / c.rate
	if c.phase > 2*math.Pi {
		c.phase -= 2 * math.Pi
	}
	c.t += 1 / c.rate
	if c.t >= c.dur {
		c.t = 0
	}
	return s
}

// SampleRate implements Generator.
func (c *Chirp) SampleRate() float64 { return c.rate }

// MachineHum models the periodic machine noise that conventional ANC
// headphones excel at: a low fundamental with decaying harmonics plus a
// small broadband floor.
type MachineHum struct {
	rate      float64
	harmonics []*Tone
	floor     *WhiteNoise
}

// NewMachineHum creates a hum with the given fundamental (e.g. 120 Hz)
// and harmonic count.
func NewMachineHum(seed uint64, fundamentalHz, sampleRate, amp float64, nHarmonics int) *MachineHum {
	m := &MachineHum{rate: sampleRate}
	rng := NewRNG(seed)
	for k := 1; k <= nHarmonics; k++ {
		f := fundamentalHz * float64(k)
		if f >= sampleRate/2 {
			break
		}
		a := amp / math.Pow(float64(k), 1.2)
		m.harmonics = append(m.harmonics, NewTone(f, sampleRate, a, rng.Range(0, 2*math.Pi)))
	}
	m.floor = NewWhiteNoise(seed+1, sampleRate, amp*0.03)
	return m
}

// Next returns the next hum sample.
func (m *MachineHum) Next() float64 {
	var s float64
	for _, h := range m.harmonics {
		s += h.Next()
	}
	return s + m.floor.Next()
}

// SampleRate implements Generator.
func (m *MachineHum) SampleRate() float64 { return m.rate }

// ConstructionNoise models impulsive wide-band machinery: random hammer
// strikes (exponentially decaying broadband bursts) over an engine rumble.
type ConstructionNoise struct {
	rng      *RNG
	rate     float64
	amp      float64
	rumble   *PinkNoise
	envelope float64
	burst    *WhiteNoise
}

// NewConstructionNoise creates a construction-site source.
func NewConstructionNoise(seed uint64, sampleRate, amp float64) *ConstructionNoise {
	return &ConstructionNoise{
		rng:    NewRNG(seed),
		rate:   sampleRate,
		amp:    amp,
		rumble: NewPinkNoise(seed+1, sampleRate, amp*0.4),
		burst:  NewWhiteNoise(seed+2, sampleRate, 1),
	}
}

// Next returns the next construction sample.
func (c *ConstructionNoise) Next() float64 {
	// Poisson-ish strikes: ~3 per second.
	if c.rng.Float64() < 3.0/c.rate {
		c.envelope = 1
	}
	s := c.rumble.Next() + c.amp*c.envelope*c.burst.Next()
	c.envelope *= math.Exp(-40 / c.rate) // ~25 ms decay constant
	return s
}

// SampleRate implements Generator.
func (c *ConstructionNoise) SampleRate() float64 { return c.rate }

// Mix sums several generators sample by sample. All inputs must share a
// sample rate.
type Mix struct {
	gens []Generator
	rate float64
}

// NewMix combines generators; it returns an error if rates disagree.
func NewMix(gens ...Generator) (*Mix, error) {
	if len(gens) == 0 {
		return nil, fmt.Errorf("audio: mix needs at least one generator")
	}
	rate := gens[0].SampleRate()
	for _, g := range gens[1:] {
		if g.SampleRate() != rate {
			return nil, fmt.Errorf("audio: mix rate mismatch: %g vs %g", g.SampleRate(), rate)
		}
	}
	return &Mix{gens: gens, rate: rate}, nil
}

// Next returns the sum of all component samples.
func (m *Mix) Next() float64 {
	var s float64
	for _, g := range m.gens {
		s += g.Next()
	}
	return s
}

// SampleRate implements Generator.
func (m *Mix) SampleRate() float64 { return m.rate }

// Silence emits zeros, for padding and control experiments.
type Silence struct{ rate float64 }

// NewSilence creates a silent generator.
func NewSilence(sampleRate float64) *Silence { return &Silence{rate: sampleRate} }

// Next returns 0.
func (s *Silence) Next() float64 { return 0 }

// SampleRate implements Generator.
func (s *Silence) SampleRate() float64 { return s.rate }

// SliceSource replays a fixed sample buffer (looping), letting recorded or
// pre-rendered material drive the simulator.
type SliceSource struct {
	data []float64
	rate float64
	pos  int
	loop bool
}

// NewSliceSource wraps data at the given rate. If loop is false the source
// emits zeros after the data is exhausted.
func NewSliceSource(data []float64, sampleRate float64, loop bool) *SliceSource {
	return &SliceSource{data: data, rate: sampleRate, loop: loop}
}

// Next returns the next buffered sample.
func (s *SliceSource) Next() float64 {
	if s.pos >= len(s.data) {
		if !s.loop || len(s.data) == 0 {
			return 0
		}
		s.pos = 0
	}
	v := s.data[s.pos]
	s.pos++
	return v
}

// SampleRate implements Generator.
func (s *SliceSource) SampleRate() float64 { return s.rate }
