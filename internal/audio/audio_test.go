package audio

import (
	"math"
	"testing"
	"testing/quick"

	"mute/internal/dsp"
)

const testRate = 8000.0

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %g", v)
		}
	}
}

func TestRNGUniformMeanProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		var sum float64
		const n = 20000
		for i := 0; i < n; i++ {
			sum += r.Uniform()
		}
		return math.Abs(sum/n) < 0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(11)
	const n = 50000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.03 {
		t.Errorf("normal mean = %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %g, want ~1", variance)
	}
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(3)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(5)
		if v < 0 || v >= 5 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Errorf("Intn(5) visited %d values, want 5", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestWhiteNoiseStats(t *testing.T) {
	g := NewWhiteNoise(1, testRate, 0.5)
	x := Render(g, 20000)
	if math.Abs(meanOf(x)) > 0.02 {
		t.Errorf("white noise mean = %g", meanOf(x))
	}
	for _, v := range x {
		if v > 0.5 || v < -0.5 {
			t.Fatalf("amplitude bound violated: %g", v)
		}
	}
	if g.SampleRate() != testRate {
		t.Error("sample rate mismatch")
	}
}

func TestWhiteNoiseDeterminism(t *testing.T) {
	a := Render(NewWhiteNoise(5, testRate, 1), 100)
	b := Render(NewWhiteNoise(5, testRate, 1), 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed white noise diverged")
		}
	}
}

func TestBandLimitedNoiseSpectrum(t *testing.T) {
	g, err := NewBandLimitedNoise(2, testRate, 1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	x := Render(g, 32768)
	psd, err := dsp.WelchPSD(x, testRate, 1024)
	if err != nil {
		t.Fatal(err)
	}
	inBand := psd.BandPower(0, 1000)
	outBand := psd.BandPower(2000, 4000)
	if inBand < 20*outBand {
		t.Errorf("band-limited noise leaks: in=%g out=%g", inBand, outBand)
	}
	if _, err := NewBandLimitedNoise(2, testRate, 1, 8000); err == nil {
		t.Error("cutoff above Nyquist should error")
	}
}

func TestPinkNoiseTilt(t *testing.T) {
	g := NewPinkNoise(3, testRate, 1)
	x := Render(g, 65536)
	psd, err := dsp.WelchPSD(x, testRate, 2048)
	if err != nil {
		t.Fatal(err)
	}
	low := psd.BandPower(50, 400)
	high := psd.BandPower(2000, 3600)
	if low < 2*high {
		t.Errorf("pink noise should tilt low: low=%g high=%g", low, high)
	}
}

func TestToneFrequency(t *testing.T) {
	g := NewTone(1000, testRate, 0.8, 0)
	x := Render(g, 8192)
	psd, err := dsp.WelchPSD(x, testRate, 1024)
	if err != nil {
		t.Fatal(err)
	}
	in := psd.BandPower(950, 1050)
	if in < 0.9*psd.TotalPower() {
		t.Error("tone energy not concentrated at 1 kHz")
	}
	// RMS of a sinusoid is amp/sqrt(2).
	if r := dsp.RMS(x); math.Abs(r-0.8/math.Sqrt2) > 0.01 {
		t.Errorf("tone RMS = %g", r)
	}
}

func TestChirpSweeps(t *testing.T) {
	g := NewChirp(100, 3000, 1.0, testRate, 1)
	x := Render(g, 8000)
	// Early part should be low frequency, late part high.
	early, err := dsp.WelchPSD(x[:2000], testRate, 512)
	if err != nil {
		t.Fatal(err)
	}
	late, err := dsp.WelchPSD(x[6000:], testRate, 512)
	if err != nil {
		t.Fatal(err)
	}
	if early.BandPower(0, 1000) < early.BandPower(1000, 4000) {
		t.Error("chirp start should be low frequency")
	}
	if late.BandPower(2000, 4000) < late.BandPower(0, 1500) {
		t.Error("chirp end should be high frequency")
	}
}

func TestMachineHumHarmonics(t *testing.T) {
	g := NewMachineHum(4, 120, testRate, 0.5, 8)
	x := Render(g, 32768)
	psd, err := dsp.WelchPSD(x, testRate, 4096)
	if err != nil {
		t.Fatal(err)
	}
	// Fundamental band should clearly beat the gap between harmonics.
	fund := psd.BandPower(110, 130)
	gap := psd.BandPower(160, 220)
	if fund < 5*gap {
		t.Errorf("hum fundamental weak: fund=%g gap=%g", fund, gap)
	}
}

func TestConstructionNoiseImpulsive(t *testing.T) {
	g := NewConstructionNoise(5, testRate, 0.8)
	x := Render(g, 8*8000)
	// Kurtosis of impulsive noise is well above Gaussian (3).
	m := meanOf(x)
	var m2, m4 float64
	for _, v := range x {
		d := v - m
		m2 += d * d
		m4 += d * d * d * d
	}
	m2 /= float64(len(x))
	m4 /= float64(len(x))
	kurt := m4 / (m2 * m2)
	if kurt < 4 {
		t.Errorf("construction noise kurtosis = %g, want > 4 (impulsive)", kurt)
	}
}

func TestSpeechIntermittency(t *testing.T) {
	g := NewSpeech(6, MaleVoice, testRate, 1)
	x := Render(g, 10*8000)
	// Count silent and active 100 ms frames.
	frame := 800
	var silent, active int
	for i := 0; i+frame <= len(x); i += frame {
		if dsp.Power(x[i:i+frame]) < 1e-8 {
			silent++
		} else {
			active++
		}
	}
	if silent == 0 {
		t.Error("speech should contain pauses")
	}
	if active == 0 {
		t.Error("speech should contain active frames")
	}
}

func TestContinuousSpeechHasNoPauses(t *testing.T) {
	g := NewContinuousSpeech(6, FemaleVoice, testRate, 1)
	x := Render(g, 5*8000)
	frame := 1600
	for i := 0; i+frame <= len(x); i += frame {
		if dsp.Power(x[i:i+frame]) < 1e-10 {
			t.Fatal("continuous speech should not contain 200 ms silences")
		}
	}
}

func TestVoicePitchDifference(t *testing.T) {
	// Female speech should carry more energy above 200 Hz relative to
	// below than male speech, by construction of the pitch ranges.
	male := Render(NewContinuousSpeech(7, MaleVoice, testRate, 1), 8*8000)
	female := Render(NewContinuousSpeech(7, FemaleVoice, testRate, 1), 8*8000)
	mp, err := dsp.WelchPSD(male, testRate, 2048)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := dsp.WelchPSD(female, testRate, 2048)
	if err != nil {
		t.Fatal(err)
	}
	mRatio := mp.BandPower(60, 160) / (mp.TotalPower() + 1e-12)
	fRatio := fp.BandPower(60, 160) / (fp.TotalPower() + 1e-12)
	if mRatio <= fRatio {
		t.Errorf("male low-pitch fraction %g should exceed female %g", mRatio, fRatio)
	}
	if MaleVoice.String() != "male" || FemaleVoice.String() != "female" {
		t.Error("voice names")
	}
}

func TestMusicSpectrumWideband(t *testing.T) {
	g := NewMusic(8, testRate, 1, 3)
	x := Render(g, 10*8000)
	psd, err := dsp.WelchPSD(x, testRate, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if psd.BandPower(200, 1000) <= 0 {
		t.Error("music should have low-mid energy")
	}
	if psd.BandPower(1000, 3000) <= 0 {
		t.Error("music should have high-mid energy")
	}
	if dsp.RMS(x) < 1e-3 {
		t.Error("music should not be silent")
	}
}

func TestBabbleIsDenserThanOneTalker(t *testing.T) {
	one := Render(NewSpeech(9, MaleVoice, testRate, 1), 8*8000)
	many := Render(NewBabble(9, 4, testRate, 1), 8*8000)
	frame := 800
	count := func(x []float64) int {
		var silent int
		for i := 0; i+frame <= len(x); i += frame {
			if dsp.Power(x[i:i+frame]) < 1e-8 {
				silent++
			}
		}
		return silent
	}
	if count(many) > count(one) {
		t.Error("4-talker babble should have fewer silent frames than one talker")
	}
}

func TestMixAndSilence(t *testing.T) {
	m, err := NewMix(NewTone(440, testRate, 0.1, 0), NewSilence(testRate))
	if err != nil {
		t.Fatal(err)
	}
	x := Render(m, 100)
	want := Render(NewTone(440, testRate, 0.1, 0), 100)
	for i := range x {
		if math.Abs(x[i]-want[i]) > 1e-15 {
			t.Fatal("mix with silence should equal the tone")
		}
	}
	if _, err := NewMix(); err == nil {
		t.Error("empty mix should error")
	}
	if _, err := NewMix(NewTone(1, 8000, 1, 0), NewTone(1, 44100, 1, 0)); err == nil {
		t.Error("rate mismatch should error")
	}
}

func TestSliceSource(t *testing.T) {
	s := NewSliceSource([]float64{1, 2, 3}, testRate, false)
	got := Render(s, 5)
	want := []float64{1, 2, 3, 0, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("non-looping slice: got %v", got)
		}
	}
	s2 := NewSliceSource([]float64{1, 2}, testRate, true)
	got2 := Render(s2, 5)
	want2 := []float64{1, 2, 1, 2, 1}
	for i := range want2 {
		if got2[i] != want2[i] {
			t.Fatalf("looping slice: got %v", got2)
		}
	}
	empty := NewSliceSource(nil, testRate, true)
	if empty.Next() != 0 {
		t.Error("empty slice source should emit 0")
	}
}

func TestRenderSeconds(t *testing.T) {
	x := RenderSeconds(NewSilence(testRate), 0.5)
	if len(x) != 4000 {
		t.Errorf("RenderSeconds length = %d, want 4000", len(x))
	}
}

func meanOf(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}
