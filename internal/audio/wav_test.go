package audio

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestWAVRoundTrip(t *testing.T) {
	in := Render(NewTone(440, 8000, 0.5, 0), 800)
	var buf bytes.Buffer
	if err := WriteWAV(&buf, in, 8000); err != nil {
		t.Fatal(err)
	}
	out, rate, err := ReadWAV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rate != 8000 {
		t.Errorf("rate = %d, want 8000", rate)
	}
	if len(out) != len(in) {
		t.Fatalf("length = %d, want %d", len(out), len(in))
	}
	for i := range in {
		if math.Abs(out[i]-in[i]) > 1.0/32000 {
			t.Fatalf("sample %d: %g vs %g", i, out[i], in[i])
		}
	}
}

func TestWAVRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := NewWhiteNoise(seed, 8000, 0.9)
		in := Render(g, 257)
		var buf bytes.Buffer
		if err := WriteWAV(&buf, in, 8000); err != nil {
			return false
		}
		out, rate, err := ReadWAV(&buf)
		if err != nil || rate != 8000 || len(out) != len(in) {
			return false
		}
		for i := range in {
			if math.Abs(out[i]-in[i]) > 1.0/32000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestWAVClipping(t *testing.T) {
	in := []float64{2.0, -2.0, 0}
	var buf bytes.Buffer
	if err := WriteWAV(&buf, in, 8000); err != nil {
		t.Fatal(err)
	}
	out, _, err := ReadWAV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-1) > 1e-3 || math.Abs(out[1]+1) > 1e-3 {
		t.Errorf("clipping failed: %v", out)
	}
}

func TestWAVErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteWAV(&buf, []float64{0}, 0); err == nil {
		t.Error("zero sample rate should error")
	}
	if _, _, err := ReadWAV(strings.NewReader("not a wav")); err == nil {
		t.Error("garbage input should error")
	}
	if _, _, err := ReadWAV(strings.NewReader("RIFFxxxxWAVE")); err == nil {
		t.Error("missing chunks should error")
	}
}

func TestWAVEmptySignal(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteWAV(&buf, nil, 8000); err != nil {
		t.Fatal(err)
	}
	out, rate, err := ReadWAV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rate != 8000 || len(out) != 0 {
		t.Errorf("empty WAV round trip: rate=%d len=%d", rate, len(out))
	}
}
