package anc

import (
	"math"
	"testing"
	"testing/quick"

	"mute/internal/audio"
	"mute/internal/dsp"
)

func TestLMSConfigValidate(t *testing.T) {
	good := LMSConfig{Taps: 8, Mu: 0.1}
	if err := good.Validate(); err != nil {
		t.Errorf("good config invalid: %v", err)
	}
	bad := []LMSConfig{
		{Taps: 0, Mu: 0.1},
		{Taps: 8, Mu: 0},
		{Taps: 8, Mu: 0.1, Leak: 1},
		{Taps: 8, Mu: 0.1, Leak: -0.1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d should be invalid", i)
		}
	}
	if _, err := NewAdaptiveFilter(bad[0]); err == nil {
		t.Error("constructor should reject invalid config")
	}
}

func TestLMSIdentifiesFIRSystem(t *testing.T) {
	// Classic system identification: LMS should converge to the unknown
	// channel when driven by white noise.
	h := []float64{0.8, -0.3, 0.15, 0.05}
	f, err := NewAdaptiveFilter(LMSConfig{Taps: 8, Mu: 0.4, Normalized: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := audio.NewRNG(1)
	ch := dsp.NewStreamConvolver(h)
	for i := 0; i < 20000; i++ {
		x := rng.Uniform()
		d := ch.Process(x)
		f.Step(x, d)
	}
	if m := f.Misalignment(h); m > 1e-4 {
		t.Errorf("misalignment = %g, want < 1e-4", m)
	}
}

func TestNLMSFasterThanLMSUnderLevelChange(t *testing.T) {
	// NLMS normalizes by input power; with a quiet input, plain LMS with
	// the same mu converges far more slowly.
	h := []float64{0.5, 0.2}
	run := func(norm bool) float64 {
		f, err := NewAdaptiveFilter(LMSConfig{Taps: 4, Mu: 0.2, Normalized: norm})
		if err != nil {
			t.Fatal(err)
		}
		rng := audio.NewRNG(2)
		ch := dsp.NewStreamConvolver(h)
		const level = 0.05 // quiet input
		for i := 0; i < 3000; i++ {
			x := level * rng.Uniform()
			d := ch.Process(x)
			f.Step(x, d)
		}
		return f.Misalignment(h)
	}
	if mn, ml := run(true), run(false); mn >= ml {
		t.Errorf("NLMS misalignment %g should beat LMS %g on quiet input", mn, ml)
	}
}

func TestLMSLeakBoundsWeights(t *testing.T) {
	f, err := NewAdaptiveFilter(LMSConfig{Taps: 4, Mu: 0.1, Leak: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	rng := audio.NewRNG(3)
	for i := 0; i < 5000; i++ {
		x := rng.Uniform()
		// Desired signal uncorrelated with x: weights should stay small.
		d := rng.Uniform()
		f.Step(x, d)
	}
	for _, w := range f.Weights() {
		if math.Abs(w) > 0.5 {
			t.Errorf("leaky LMS weight %g grew too large", w)
		}
	}
}

func TestAdaptiveFilterSetWeightsAndReset(t *testing.T) {
	f, err := NewAdaptiveFilter(LMSConfig{Taps: 3, Mu: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.SetWeights([]float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	f.Push(1)
	if y := f.Output(); y != 1 {
		t.Errorf("output = %g, want 1 (w[0]*x[0])", y)
	}
	if err := f.SetWeights([]float64{1}); err == nil {
		t.Error("length mismatch should error")
	}
	f.Reset()
	f.Push(1)
	if y := f.Output(); y != 0 {
		t.Errorf("after reset output = %g, want 0", y)
	}
}

func TestMisalignmentPerfect(t *testing.T) {
	f, _ := NewAdaptiveFilter(LMSConfig{Taps: 3, Mu: 0.1})
	h := []float64{0.5, 0.25, 0.1}
	if err := f.SetWeights(h); err != nil {
		t.Fatal(err)
	}
	if m := f.Misalignment(h); m != 0 {
		t.Errorf("perfect weights misalignment = %g", m)
	}
	if !math.IsInf(f.Misalignment([]float64{0, 0, 0}), 1) {
		t.Error("zero reference should give +Inf misalignment")
	}
}

func TestLMSConvergenceMonotoneProperty(t *testing.T) {
	// Property: on stationary white noise, the long-run error power after
	// convergence is far below the initial error power.
	f := func(seed uint64) bool {
		h := []float64{0.7, -0.2, 0.1}
		af, err := NewAdaptiveFilter(LMSConfig{Taps: 6, Mu: 0.3, Normalized: true})
		if err != nil {
			return false
		}
		rng := audio.NewRNG(seed)
		ch := dsp.NewStreamConvolver(h)
		var early, late float64
		const n = 8000
		for i := 0; i < n; i++ {
			x := rng.Uniform()
			d := ch.Process(x)
			_, e := af.Step(x, d)
			if i < 200 {
				early += e * e
			}
			if i >= n-200 {
				late += e * e
			}
		}
		return late < early/10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestFxLMSCancelsToneThroughSecondaryPath(t *testing.T) {
	// Single-frequency feedforward ANC with an identified secondary path:
	// the residual at the error mic should drop well below the
	// uncanceled level.
	fs := 8000.0
	primary := []float64{0, 0, 0.9, 0.3, -0.1} // noise → error mic
	secondary := []float64{0.7, 0.25, 0.1}     // speaker → error mic
	fx, err := NewFxLMS(LMSConfig{Taps: 16, Mu: 0.5, Normalized: true}, secondary)
	if err != nil {
		t.Fatal(err)
	}
	priCh := dsp.NewStreamConvolver(primary)
	secCh := dsp.NewStreamConvolver(secondary)
	tone := audio.NewTone(400, fs, 0.5, 0)
	var uncanceled, residual float64
	const n = 24000
	for i := 0; i < n; i++ {
		x := tone.Next()
		fx.Push(x)
		a := fx.AntiNoise()
		d := priCh.Process(x)
		e := d + secCh.Process(a)
		fx.Adapt(e)
		if i >= n-4000 {
			uncanceled += d * d
			residual += e * e
		}
	}
	gain := 10 * math.Log10(residual/uncanceled)
	if gain > -20 {
		t.Errorf("FxLMS cancellation = %.1f dB, want < -20 dB", gain)
	}
}

func TestFxLMSErrors(t *testing.T) {
	if _, err := NewFxLMS(LMSConfig{Taps: 0, Mu: 1}, []float64{1}); err == nil {
		t.Error("invalid config should error")
	}
	if _, err := NewFxLMS(LMSConfig{Taps: 4, Mu: 0.1}, nil); err == nil {
		t.Error("empty secondary path should error")
	}
}

func TestFxLMSSetWeightsResetRoundTrip(t *testing.T) {
	fx, err := NewFxLMS(LMSConfig{Taps: 4, Mu: 0.1}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	w := []float64{0.1, 0.2, 0.3, 0.4}
	if err := fx.SetWeights(w); err != nil {
		t.Fatal(err)
	}
	got := fx.Weights()
	for i := range w {
		if got[i] != w[i] {
			t.Fatal("weights round trip failed")
		}
	}
	if err := fx.SetWeights([]float64{1}); err == nil {
		t.Error("length mismatch should error")
	}
	fx.Reset()
	for _, v := range fx.Weights() {
		if v != 0 {
			t.Error("reset should zero weights")
		}
	}
}

func TestFxLMSLeakStable(t *testing.T) {
	fx, err := NewFxLMS(LMSConfig{Taps: 8, Mu: 0.05, Leak: 0.01}, []float64{0.8, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	rng := audio.NewRNG(5)
	for i := 0; i < 20000; i++ {
		fx.Push(rng.Uniform())
		fx.Adapt(rng.Uniform())
	}
	for _, w := range fx.Weights() {
		if math.IsNaN(w) || math.Abs(w) > 100 {
			t.Fatalf("leaky FxLMS weight diverged: %g", w)
		}
	}
}

func TestEstimateSecondaryPath(t *testing.T) {
	truePath := []float64{0.6, 0.3, -0.1, 0.05}
	est, err := EstimateSecondaryPath(truePath, 8, 20000, 0.001, 1)
	if err != nil {
		t.Fatal(err)
	}
	var num, den float64
	for k := range est {
		var hk float64
		if k < len(truePath) {
			hk = truePath[k]
		}
		d := est[k] - hk
		num += d * d
		den += hk * hk
	}
	if num/den > 1e-3 {
		t.Errorf("secondary path misalignment = %g, want < 1e-3", num/den)
	}
}

func TestEstimateSecondaryPathErrors(t *testing.T) {
	if _, err := EstimateSecondaryPath(nil, 8, 100, 0, 1); err == nil {
		t.Error("empty path should error")
	}
	if _, err := EstimateSecondaryPath([]float64{1}, 0, 100, 0, 1); err == nil {
		t.Error("zero taps should error")
	}
}

func BenchmarkFxLMSStep(b *testing.B) {
	fx, err := NewFxLMS(LMSConfig{Taps: 128, Mu: 0.1, Normalized: true}, []float64{0.7, 0.2, 0.1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fx.Push(0.5)
		a := fx.AntiNoise()
		fx.Adapt(0.1 - a*0.01)
	}
}
