package anc

import (
	"testing"

	"mute/internal/audio"
	"mute/internal/dsp"
)

func TestRLSConfigValidate(t *testing.T) {
	good := RLSConfig{Taps: 8, Lambda: 0.999, Delta: 0.01}
	if err := good.Validate(); err != nil {
		t.Errorf("good config invalid: %v", err)
	}
	bad := []RLSConfig{
		{Taps: 0, Lambda: 0.99, Delta: 0.01},
		{Taps: 8, Lambda: 0, Delta: 0.01},
		{Taps: 8, Lambda: 1.1, Delta: 0.01},
		{Taps: 8, Lambda: 0.99, Delta: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d should be invalid", i)
		}
		if _, err := NewRLS(c); err == nil {
			t.Errorf("constructor should reject case %d", i)
		}
	}
}

func TestRLSIdentifiesSystem(t *testing.T) {
	h := []float64{0.8, -0.3, 0.15, 0.05}
	r, err := NewRLS(RLSConfig{Taps: 8, Lambda: 0.999, Delta: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	rng := audio.NewRNG(1)
	ch := dsp.NewStreamConvolver(h)
	for i := 0; i < 2000; i++ {
		x := rng.Uniform()
		d := ch.Process(x)
		r.Step(x, d)
	}
	if m := r.Misalignment(h); m > 1e-6 {
		t.Errorf("RLS misalignment = %g, want < 1e-6", m)
	}
}

func TestRLSConvergesFasterThanNLMSOnColoredInput(t *testing.T) {
	// The motivation for RLS: colored (correlated) input slows LMS/NLMS
	// dramatically while RLS is insensitive to the input spectrum.
	h := []float64{0.7, -0.25, 0.1, 0.05, -0.02}
	color, err := dsp.LowPassFIR(600, 8000, 31, dsp.Hamming)
	if err != nil {
		t.Fatal(err)
	}
	const n = 3000
	rng := audio.NewRNG(2)
	colorCh := dsp.NewStreamConvolver(color)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = colorCh.Process(rng.Uniform()) * 3
	}
	sys := dsp.NewStreamConvolver(h)
	ds := sys.ProcessBlock(xs)

	rls, err := NewRLS(RLSConfig{Taps: 10, Lambda: 0.999, Delta: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	nlms, err := NewAdaptiveFilter(LMSConfig{Taps: 10, Mu: 0.5, Normalized: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		rls.Step(xs[i], ds[i])
		nlms.Step(xs[i], ds[i])
	}
	mr, mn := rls.Misalignment(h), nlms.Misalignment(h)
	if mr >= mn {
		t.Errorf("RLS misalignment %g should beat NLMS %g on colored input", mr, mn)
	}
	// Heavily colored input leaves high-frequency modes weakly excited, so
	// exact identification is not reachable; 1e-2 is still far tighter
	// than NLMS achieves here.
	if mr > 1e-2 {
		t.Errorf("RLS should converge tightly on colored input, got %g", mr)
	}
}

func TestRLSTracksChangingChannel(t *testing.T) {
	// Head mobility stand-in: the channel flips mid-run; a forgetting
	// factor < 1 re-converges.
	h1 := []float64{0.8, 0.2}
	h2 := []float64{-0.4, 0.6}
	r, err := NewRLS(RLSConfig{Taps: 4, Lambda: 0.995, Delta: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	rng := audio.NewRNG(3)
	ch1 := dsp.NewStreamConvolver(h1)
	ch2 := dsp.NewStreamConvolver(h2)
	for i := 0; i < 2000; i++ {
		x := rng.Uniform()
		r.Step(x, ch1.Process(x))
	}
	if m := r.Misalignment(h1); m > 1e-4 {
		t.Fatalf("phase 1 misalignment %g", m)
	}
	for i := 0; i < 4000; i++ {
		x := rng.Uniform()
		r.Step(x, ch2.Process(x))
	}
	if m := r.Misalignment(h2); m > 1e-3 {
		t.Errorf("after channel change, misalignment = %g, want < 1e-3", m)
	}
}

func TestRLSReset(t *testing.T) {
	r, err := NewRLS(RLSConfig{Taps: 4, Lambda: 0.999, Delta: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	rng := audio.NewRNG(4)
	for i := 0; i < 100; i++ {
		r.Step(rng.Uniform(), rng.Uniform())
	}
	r.Reset()
	for _, w := range r.Weights() {
		if w != 0 {
			t.Fatal("reset should zero weights")
		}
	}
	r.Push(1)
	if r.Output() != 0 {
		t.Error("reset RLS should output 0")
	}
}

func BenchmarkRLSStep64(b *testing.B) {
	r, err := NewRLS(RLSConfig{Taps: 64, Lambda: 0.999, Delta: 0.01})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Step(0.5, 0.3)
	}
}
