package anc

import (
	"fmt"

	"mute/internal/audio"
	"mute/internal/dsp"
)

// EstimateSecondaryPath identifies the speaker → error-microphone channel
// h_se by playing a known white-noise preamble through the anti-noise
// speaker and adapting an LMS identifier against the error microphone's
// response — the procedure the paper notes is easy because the probe is
// known (Section 2).
//
// truePath is the physical channel the probe passes through (supplied by
// the simulator); micNoiseRMS adds measurement noise at the error mic.
// The function returns the estimated impulse response of length taps.
func EstimateSecondaryPath(truePath []float64, taps, probeLen int, micNoiseRMS float64, seed uint64) ([]float64, error) {
	if len(truePath) == 0 {
		return nil, fmt.Errorf("anc: empty true secondary path")
	}
	if taps <= 0 {
		return nil, fmt.Errorf("anc: taps must be positive, got %d", taps)
	}
	if probeLen < taps*10 {
		probeLen = taps * 10
	}
	id, err := NewAdaptiveFilter(LMSConfig{Taps: taps, Mu: 0.5, Normalized: true})
	if err != nil {
		return nil, err
	}
	rng := audio.NewRNG(seed)
	ch := dsp.NewStreamConvolver(truePath)
	for i := 0; i < probeLen; i++ {
		probe := rng.Uniform()
		d := ch.Process(probe) + micNoiseRMS*rng.Norm()
		id.Step(probe, d)
	}
	return id.Weights(), nil
}
