package anc

import (
	"fmt"
	"math"

	"mute/internal/dsp"
)

// FxLMS is the conventional feedforward ANC algorithm used by today's
// headphones (Section 2 of the paper): a causal adaptive filter h_AF driven
// by the reference microphone, whose updates are computed against the
// reference signal filtered through an estimate of the secondary path
// ĥ_se (speaker → error microphone).
//
// The processing-latency limitation of real headphones is modeled by
// PipelineDelay: the anti-noise computed from reference sample x(t) only
// reaches the speaker PipelineDelay samples later, which is precisely the
// missed deadline of Figure 5(a).
type FxLMS struct {
	cfg    LMSConfig
	w      []float64 // h_AF weights (causal taps only)
	x      []float64 // reference history, newest first
	fx     []float64 // filtered-x history (x through ĥ_se), newest first
	sec    *dsp.StreamConvolver
	fxPow  float64
	xPow   float64
	errVar float64 // running residual variance for robust update clipping
}

// NewFxLMS creates the conventional-ANC baseline. secPathEst is the
// secondary-path estimate ĥ_se used for the filtered-x computation.
func NewFxLMS(cfg LMSConfig, secPathEst []float64) (*FxLMS, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(secPathEst) == 0 {
		return nil, fmt.Errorf("anc: empty secondary path estimate")
	}
	return &FxLMS{
		cfg: cfg,
		w:   make([]float64, cfg.Taps),
		x:   make([]float64, cfg.Taps),
		fx:  make([]float64, cfg.Taps),
		sec: dsp.NewStreamConvolver(secPathEst),
	}, nil
}

// Push shifts a new reference-microphone sample into the histories.
func (f *FxLMS) Push(x float64) {
	oldX := f.x[len(f.x)-1]
	copy(f.x[1:], f.x)
	f.x[0] = x
	f.xPow += x*x - oldX*oldX
	if f.xPow < 0 {
		f.xPow = 0
	}
	fxNew := f.sec.Process(x)
	old := f.fx[len(f.fx)-1]
	copy(f.fx[1:], f.fx)
	f.fx[0] = fxNew
	f.fxPow += fxNew*fxNew - old*old
	if f.fxPow < 0 {
		f.fxPow = 0
	}
}

// AntiNoise computes the current anti-noise output α(t) = Σ w[k] x(t-k).
func (f *FxLMS) AntiNoise() float64 {
	var y float64
	for k, wk := range f.w {
		y += wk * f.x[k]
	}
	return y
}

// Adapt applies the filtered-x LMS update given the measured residual
// error e(t) from the error microphone (Equation 7, causal taps only):
// w[k] -= µ e(t) fx(t-k).
func (f *FxLMS) Adapt(e float64) {
	// Robust clipping: bound impulsive residuals (hammer strikes, clicks)
	// to a few standard deviations of recent history so one transient
	// cannot kick the weights out of the stability region.
	f.errVar = 0.998*f.errVar + 0.002*e*e
	if limit := 3 * math.Sqrt(f.errVar); limit > 0 && (e > limit || e < -limit) {
		if e > 0 {
			e = limit
		} else {
			e = -limit
		}
	}
	mu := f.cfg.Mu
	if f.cfg.Normalized {
		// Regularized NLMS. The raw reference power enters the
		// normalizer so that sound concentrated where the secondary
		// path has little gain (e.g. rumble below the transducer's
		// high-pass corner) cannot inflate the effective step: filtered-x
		// power alone would be tiny there while the gradient noise is not.
		mu /= f.fxPow + 0.05*f.xPow + 1e-3
	}
	leak := 1 - f.cfg.Leak*f.cfg.Mu
	for k := range f.w {
		w := f.w[k]
		if f.cfg.Leak > 0 {
			w *= leak
		}
		f.w[k] = w - mu*e*f.fx[k]
	}
}

// Weights returns a copy of h_AF.
func (f *FxLMS) Weights() []float64 {
	out := make([]float64, len(f.w))
	copy(out, f.w)
	return out
}

// SetWeights loads cached weights.
func (f *FxLMS) SetWeights(w []float64) error {
	if len(w) != len(f.w) {
		return fmt.Errorf("anc: weight length %d != taps %d", len(w), len(f.w))
	}
	copy(f.w, w)
	return nil
}

// Reset clears adaptation state (weights, histories, secondary filter).
func (f *FxLMS) Reset() {
	for i := range f.w {
		f.w[i] = 0
	}
	for i := range f.x {
		f.x[i] = 0
		f.fx[i] = 0
	}
	f.fxPow = 0
	f.xPow = 0
	f.errVar = 0
	f.sec.Reset()
}
