package anc

import (
	"fmt"
	"math"

	"mute/internal/dsp"
)

// FxLMS is the conventional feedforward ANC algorithm used by today's
// headphones (Section 2 of the paper): a causal adaptive filter h_AF driven
// by the reference microphone, whose updates are computed against the
// reference signal filtered through an estimate of the secondary path
// ĥ_se (speaker → error microphone).
//
// The processing-latency limitation of real headphones is modeled by
// PipelineDelay: the anti-noise computed from reference sample x(t) only
// reaches the speaker PipelineDelay samples later, which is precisely the
// missed deadline of Figure 5(a).
type FxLMS struct {
	cfg LMSConfig
	w   []float64 // h_AF weights (causal taps only)
	// Histories are doubled ring buffers: each sample is written at p and
	// p+Taps, so x[p : p+Taps] is always a contiguous newest-first window
	// — the same tap order as a shifted array, without the two per-sample
	// memmoves.
	x      []float64 // reference history ring
	fx     []float64 // filtered-x history ring (x through ĥ_se)
	p      int       // ring cursor: index of the newest sample
	sec    *dsp.StreamConvolver
	fxPow  float64
	xPow   float64
	errVar float64 // running residual variance for robust update clipping
}

// NewFxLMS creates the conventional-ANC baseline. secPathEst is the
// secondary-path estimate ĥ_se used for the filtered-x computation.
func NewFxLMS(cfg LMSConfig, secPathEst []float64) (*FxLMS, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(secPathEst) == 0 {
		return nil, fmt.Errorf("anc: empty secondary path estimate")
	}
	return &FxLMS{
		cfg: cfg,
		w:   make([]float64, cfg.Taps),
		x:   make([]float64, 2*cfg.Taps),
		fx:  make([]float64, 2*cfg.Taps),
		sec: dsp.NewStreamConvolver(secPathEst),
	}, nil
}

// Push shifts a new reference-microphone sample into the histories.
func (f *FxLMS) Push(x float64) {
	n := len(f.w)
	oldX := f.x[f.p+n-1] // the sample about to leave the window
	old := f.fx[f.p+n-1]
	f.p--
	if f.p < 0 {
		f.p = n - 1
	}
	f.x[f.p] = x
	f.x[f.p+n] = x
	f.xPow += x*x - oldX*oldX
	if f.xPow < 0 {
		f.xPow = 0
	}
	fxNew := f.sec.Process(x)
	f.fx[f.p] = fxNew
	f.fx[f.p+n] = fxNew
	f.fxPow += fxNew*fxNew - old*old
	if f.fxPow < 0 {
		f.fxPow = 0
	}
}

// AntiNoise computes the current anti-noise output α(t) = Σ w[k] x(t-k).
func (f *FxLMS) AntiNoise() float64 {
	w := f.w
	x := f.x[f.p : f.p+len(w)]
	var y float64
	// Unrolled with one accumulator and sequential adds — bit-identical to
	// the rolled dot product.
	k := 0
	for ; k+3 < len(w); k += 4 {
		y += w[k] * x[k]
		y += w[k+1] * x[k+1]
		y += w[k+2] * x[k+2]
		y += w[k+3] * x[k+3]
	}
	for ; k < len(w); k++ {
		y += w[k] * x[k]
	}
	return y
}

// Adapt applies the filtered-x LMS update given the measured residual
// error e(t) from the error microphone (Equation 7, causal taps only):
// w[k] -= µ e(t) fx(t-k).
func (f *FxLMS) Adapt(e float64) {
	// Robust clipping: bound impulsive residuals (hammer strikes, clicks)
	// to a few standard deviations of recent history so one transient
	// cannot kick the weights out of the stability region.
	f.errVar = 0.998*f.errVar + 0.002*e*e
	// Pre-filter before the exact check: clipping requires e² > 9·errVar up
	// to a relative rounding error of a few ulps, so when e² ≤ 8.99·errVar
	// no clip was possible and the per-sample sqrt is skipped. The inner
	// comparison is unchanged, keeping the clip decision bit-identical.
	if e*e > 8.99*f.errVar {
		if limit := 3 * math.Sqrt(f.errVar); limit > 0 && (e > limit || e < -limit) {
			if e > 0 {
				e = limit
			} else {
				e = -limit
			}
		}
	}
	mu := f.cfg.Mu
	if f.cfg.Normalized {
		// Regularized NLMS. The raw reference power enters the
		// normalizer so that sound concentrated where the secondary
		// path has little gain (e.g. rumble below the transducer's
		// high-pass corner) cannot inflate the effective step: filtered-x
		// power alone would be tiny there while the gradient noise is not.
		mu /= f.fxPow + 0.05*f.xPow + 1e-3
	}
	// The leak branch is hoisted out of the tap loop and mu*e is folded
	// once; per-tap arithmetic keeps the original association
	// ((mu*e)*fx[k]), so the weights stay bit-identical to the rolled loop.
	muE := mu * e
	w := f.w
	fx := f.fx[f.p : f.p+len(w)]
	if f.cfg.Leak > 0 {
		leak := 1 - f.cfg.Leak*f.cfg.Mu
		k := 0
		for ; k+3 < len(w); k += 4 {
			w[k] = w[k]*leak - muE*fx[k]
			w[k+1] = w[k+1]*leak - muE*fx[k+1]
			w[k+2] = w[k+2]*leak - muE*fx[k+2]
			w[k+3] = w[k+3]*leak - muE*fx[k+3]
		}
		for ; k < len(w); k++ {
			w[k] = w[k]*leak - muE*fx[k]
		}
		return
	}
	k := 0
	for ; k+3 < len(w); k += 4 {
		w[k] -= muE * fx[k]
		w[k+1] -= muE * fx[k+1]
		w[k+2] -= muE * fx[k+2]
		w[k+3] -= muE * fx[k+3]
	}
	for ; k < len(w); k++ {
		w[k] -= muE * fx[k]
	}
}

// Weights returns a copy of h_AF.
func (f *FxLMS) Weights() []float64 {
	out := make([]float64, len(f.w))
	copy(out, f.w)
	return out
}

// SetWeights loads cached weights.
func (f *FxLMS) SetWeights(w []float64) error {
	if len(w) != len(f.w) {
		return fmt.Errorf("anc: weight length %d != taps %d", len(w), len(f.w))
	}
	copy(f.w, w)
	return nil
}

// Reset clears adaptation state (weights, histories, secondary filter).
func (f *FxLMS) Reset() {
	for i := range f.w {
		f.w[i] = 0
	}
	for i := range f.x {
		f.x[i] = 0
		f.fx[i] = 0
	}
	f.p = 0
	f.fxPow = 0
	f.xPow = 0
	f.errVar = 0
	f.sec.Reset()
}
