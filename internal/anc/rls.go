package anc

import (
	"fmt"
	"math"
)

// RLSConfig configures a recursive-least-squares adaptive filter — the
// "enhanced filtering method known to converge faster" the paper points to
// for head mobility (Section 6). RLS converges in roughly one pass over
// the filter length regardless of the input spectrum, at O(taps²) cost per
// sample.
type RLSConfig struct {
	// Taps is the filter length.
	Taps int
	// Lambda is the exponential forgetting factor in (0, 1]; values just
	// below 1 (0.995–0.9999) track slowly varying channels.
	Lambda float64
	// Delta initializes the inverse correlation matrix as I/Delta; small
	// positive values (1e-2) start adaptation aggressively.
	Delta float64
}

// Validate checks the configuration.
func (c RLSConfig) Validate() error {
	if c.Taps <= 0 {
		return fmt.Errorf("anc: RLS taps must be positive, got %d", c.Taps)
	}
	if c.Lambda <= 0 || c.Lambda > 1 {
		return fmt.Errorf("anc: RLS lambda %g outside (0, 1]", c.Lambda)
	}
	if c.Delta <= 0 {
		return fmt.Errorf("anc: RLS delta %g must be positive", c.Delta)
	}
	return nil
}

// RLS is a recursive-least-squares transversal filter.
type RLS struct {
	cfg RLSConfig
	w   []float64   // weights, w[0] newest
	x   []float64   // input history, x[0] newest
	p   [][]float64 // inverse correlation matrix
	k   []float64   // gain vector (scratch)
	px  []float64   // P·x scratch
}

// NewRLS creates a zero-initialized RLS filter.
func NewRLS(cfg RLSConfig) (*RLS, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Taps
	r := &RLS{
		cfg: cfg,
		w:   make([]float64, n),
		x:   make([]float64, n),
		k:   make([]float64, n),
		px:  make([]float64, n),
	}
	r.p = make([][]float64, n)
	for i := range r.p {
		r.p[i] = make([]float64, n)
		r.p[i][i] = 1 / cfg.Delta
	}
	return r, nil
}

// Push shifts a new input sample into the history.
func (r *RLS) Push(x float64) {
	copy(r.x[1:], r.x)
	r.x[0] = x
}

// Output computes the current filter output.
func (r *RLS) Output() float64 {
	var y float64
	for i, wi := range r.w {
		y += wi * r.x[i]
	}
	return y
}

// Adapt applies one RLS update with a-priori error e (caller convention:
// for system identification e = d − y).
func (r *RLS) Adapt(e float64) {
	n := r.cfg.Taps
	lambda := r.cfg.Lambda
	// px = P·x
	for i := 0; i < n; i++ {
		var acc float64
		row := r.p[i]
		for j := 0; j < n; j++ {
			acc += row[j] * r.x[j]
		}
		r.px[i] = acc
	}
	// denom = λ + xᵀ·P·x. For a positive-definite P the quadratic form is
	// non-negative; numerical asymmetry can push it negative, which would
	// flip the gain's sign and destroy the filter — clamp at λ.
	denom := lambda
	for i := 0; i < n; i++ {
		denom += r.x[i] * r.px[i]
	}
	if denom < lambda {
		denom = lambda
	}
	// k = P·x / denom
	for i := 0; i < n; i++ {
		r.k[i] = r.px[i] / denom
	}
	// w += k·e
	for i := 0; i < n; i++ {
		r.w[i] += r.k[i] * e
	}
	// P = (P − k·(P·x)ᵀ)/λ, keeping symmetry.
	invL := 1 / lambda
	var trace float64
	for i := 0; i < n; i++ {
		ki := r.k[i]
		row := r.p[i]
		for j := 0; j < n; j++ {
			row[j] = (row[j] - ki*r.px[j]) * invL
		}
		trace += row[i]
	}
	// Covariance wind-up guard: with λ < 1 and input that does not excite
	// every direction (colored noise), P grows as λ^{-t} along the
	// unexcited subspace and eventually overflows. Bound the trace at a
	// large multiple of its initial value, rescaling P when exceeded.
	maxTrace := 1e2 * float64(n) / r.cfg.Delta
	if trace > maxTrace {
		scale := maxTrace / trace
		for i := 0; i < n; i++ {
			row := r.p[i]
			for j := 0; j < n; j++ {
				row[j] *= scale
			}
		}
	}
	// Symmetrize to keep P positive definite under floating-point error.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m := 0.5 * (r.p[i][j] + r.p[j][i])
			r.p[i][j] = m
			r.p[j][i] = m
		}
	}
}

// Step pushes x, predicts y, adapts toward d, and returns (y, e).
func (r *RLS) Step(x, d float64) (y, e float64) {
	r.Push(x)
	y = r.Output()
	e = d - y
	r.Adapt(e)
	return y, e
}

// Weights returns a copy of the weights.
func (r *RLS) Weights() []float64 {
	out := make([]float64, len(r.w))
	copy(out, r.w)
	return out
}

// Misalignment returns ||w − h||²/||h||² against a reference response.
func (r *RLS) Misalignment(h []float64) float64 {
	var num, den float64
	for k := range r.w {
		var hk float64
		if k < len(h) {
			hk = h[k]
		}
		d := r.w[k] - hk
		num += d * d
		den += hk * hk
	}
	if den == 0 {
		return math.Inf(1)
	}
	return num / den
}

// Reset zeroes the filter and re-initializes the correlation matrix.
func (r *RLS) Reset() {
	for i := range r.w {
		r.w[i] = 0
		r.x[i] = 0
		for j := range r.p[i] {
			r.p[i][j] = 0
		}
		r.p[i][i] = 1 / r.cfg.Delta
	}
}
