// Package anc implements the classical adaptive-filtering machinery of
// active noise cancellation: LMS/NLMS weight adaptation, the filtered-x LMS
// (FxLMS) structure used by commercial headphones, and secondary-path
// estimation. The lookahead-aware algorithm (LANC) that is the paper's
// contribution builds on these primitives in package core.
package anc

import (
	"fmt"
	"math"
)

// LMSConfig configures an adaptive FIR filter.
type LMSConfig struct {
	// Taps is the filter length.
	Taps int
	// Mu is the adaptation step size (gradient-descent rate µ in
	// Equation 6 of the paper).
	Mu float64
	// Normalized selects NLMS: the step is divided by the reference
	// signal power in the filter window, making convergence insensitive
	// to input level.
	Normalized bool
	// Leak is an optional leakage factor in [0, 1); each update shrinks
	// the weights by (1 - Leak*Mu), bounding weight drift under
	// persistent bias. 0 disables leakage.
	Leak float64
}

// Validate checks the configuration.
func (c LMSConfig) Validate() error {
	if c.Taps <= 0 {
		return fmt.Errorf("anc: taps must be positive, got %d", c.Taps)
	}
	if c.Mu <= 0 {
		return fmt.Errorf("anc: mu must be positive, got %g", c.Mu)
	}
	if c.Leak < 0 || c.Leak >= 1 {
		return fmt.Errorf("anc: leak %g outside [0, 1)", c.Leak)
	}
	return nil
}

// AdaptiveFilter is a causal transversal adaptive filter with LMS/NLMS
// updates. It is the workhorse for both system identification (secondary
// path estimation) and the conventional-ANC baseline.
type AdaptiveFilter struct {
	cfg LMSConfig
	w   []float64 // weights, w[0] multiplies the newest sample
	x   []float64 // reference history, x[0] newest
	pow float64   // running power of the history window (for NLMS)
}

// NewAdaptiveFilter creates a zero-initialized adaptive filter.
func NewAdaptiveFilter(cfg LMSConfig) (*AdaptiveFilter, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &AdaptiveFilter{
		cfg: cfg,
		w:   make([]float64, cfg.Taps),
		x:   make([]float64, cfg.Taps),
	}, nil
}

// Push shifts a new reference sample into the filter history.
func (f *AdaptiveFilter) Push(x float64) {
	old := f.x[len(f.x)-1]
	copy(f.x[1:], f.x)
	f.x[0] = x
	f.pow += x*x - old*old
	if f.pow < 0 {
		f.pow = 0
	}
}

// Output computes the current filter output y(t) = Σ w[k] x(t-k).
func (f *AdaptiveFilter) Output() float64 {
	w, x := f.w, f.x
	if len(x) < len(w) {
		return 0
	}
	var y float64
	// Unrolled with one accumulator and sequential adds — bit-identical to
	// the rolled dot product, minus most loop overhead and bounds checks.
	k := 0
	for ; k+3 < len(w); k += 4 {
		y += w[k] * x[k]
		y += w[k+1] * x[k+1]
		y += w[k+2] * x[k+2]
		y += w[k+3] * x[k+3]
	}
	for ; k < len(w); k++ {
		y += w[k] * x[k]
	}
	return y
}

// Adapt applies one LMS update with error e: w[k] += µ' e x(t-k), where µ'
// is Mu (LMS) or Mu normalized by window power (NLMS). The caller defines
// the error sign convention; for system identification e = d - y.
func (f *AdaptiveFilter) Adapt(e float64) {
	mu := f.cfg.Mu
	if f.cfg.Normalized {
		mu /= f.pow + 1e-8
	}
	muE := mu * e
	w, x := f.w, f.x
	if len(x) < len(w) {
		return
	}
	if f.cfg.Leak > 0 {
		// The leak branch is hoisted out of the tap loop; per-tap arithmetic
		// is unchanged, so the weights stay bit-identical.
		leak := 1 - f.cfg.Leak*f.cfg.Mu
		k := 0
		for ; k+3 < len(w); k += 4 {
			w[k] = w[k]*leak + muE*x[k]
			w[k+1] = w[k+1]*leak + muE*x[k+1]
			w[k+2] = w[k+2]*leak + muE*x[k+2]
			w[k+3] = w[k+3]*leak + muE*x[k+3]
		}
		for ; k < len(w); k++ {
			w[k] = w[k]*leak + muE*x[k]
		}
		return
	}
	k := 0
	for ; k+3 < len(w); k += 4 {
		w[k] += muE * x[k]
		w[k+1] += muE * x[k+1]
		w[k+2] += muE * x[k+2]
		w[k+3] += muE * x[k+3]
	}
	for ; k < len(w); k++ {
		w[k] += muE * x[k]
	}
}

// Step pushes x, computes the prediction y, adapts toward desired d, and
// returns (y, e) with e = d - y. This is the classic system-identification
// iteration.
func (f *AdaptiveFilter) Step(x, d float64) (y, e float64) {
	f.Push(x)
	y = f.Output()
	e = d - y
	f.Adapt(e)
	return y, e
}

// Weights returns a copy of the current weights.
func (f *AdaptiveFilter) Weights() []float64 {
	out := make([]float64, len(f.w))
	copy(out, f.w)
	return out
}

// SetWeights overwrites the filter weights (used when loading a cached
// profile filter). The length must match the configured tap count.
func (f *AdaptiveFilter) SetWeights(w []float64) error {
	if len(w) != len(f.w) {
		return fmt.Errorf("anc: weight length %d != taps %d", len(w), len(f.w))
	}
	copy(f.w, w)
	return nil
}

// Reset zeroes weights and history.
func (f *AdaptiveFilter) Reset() {
	for i := range f.w {
		f.w[i] = 0
	}
	for i := range f.x {
		f.x[i] = 0
	}
	f.pow = 0
}

// Misalignment returns the normalized weight error ||w - h||² / ||h||²
// against a reference impulse response h (zero-padded or truncated to the
// filter length). It is the standard convergence metric for adaptive
// filters.
func (f *AdaptiveFilter) Misalignment(h []float64) float64 {
	var num, den float64
	for k := range f.w {
		var hk float64
		if k < len(h) {
			hk = h[k]
		}
		d := f.w[k] - hk
		num += d * d
		den += hk * hk
	}
	if den == 0 {
		return math.Inf(1)
	}
	return num / den
}
