package anc

import "testing"

// TestFxLMSStepAllocatesNothing pins the conventional-ANC per-sample loop
// (the Bose baseline's inner loop): Push, AntiNoise and Adapt must not
// allocate in steady state.
func TestFxLMSStepAllocatesNothing(t *testing.T) {
	f, err := NewFxLMS(LMSConfig{Taps: 128, Mu: 0.05, Normalized: true},
		[]float64{0.85, 0.22, 0.06})
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	if n := testing.AllocsPerRun(200, func() {
		x := float64(i%17)*0.05 - 0.4
		f.Push(x)
		y := f.AntiNoise()
		f.Adapt(0.01 * (x - y))
		i++
	}); n != 0 {
		t.Errorf("FxLMS step allocated %.1f times per run", n)
	}
}
