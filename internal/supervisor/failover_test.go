package supervisor

import (
	"testing"

	"mute/internal/audio"
)

// failoverHarness drives a Failover while mirroring each relay's
// concealment history, so tests can assert on what the stream a switch
// lands on actually contained.
type failoverHarness struct {
	t        *testing.T
	f        *Failover
	gen      audio.Generator
	relays   int
	history  [][]bool // per-relay real flags, full run
	actives  []int    // active relay after every step
	switches []int    // step indices where the active relay changed
}

func newFailoverHarness(t *testing.T, cfg FailoverConfig) *failoverHarness {
	t.Helper()
	f, err := NewFailover(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return &failoverHarness{
		t:       t,
		f:       f,
		gen:     audio.NewWhiteNoise(17, 8000, 0.3),
		relays:  cfg.Relays,
		history: make([][]bool, cfg.Relays),
	}
}

// feed steps the failover n times with the given per-relay liveness.
func (h *failoverHarness) feed(n int, real []bool) {
	h.t.Helper()
	fwd := make([]float64, h.relays)
	rl := make([]bool, h.relays)
	for i := 0; i < n; i++ {
		x := h.gen.Next()
		for r := 0; r < h.relays; r++ {
			fwd[r] = x
			rl[r] = real[r]
			h.history[r] = append(h.history[r], real[r])
		}
		prev := h.f.Active()
		idx, err := h.f.Step(x, fwd, rl)
		if err != nil {
			h.t.Fatal(err)
		}
		if idx != prev && len(h.actives) > 0 {
			h.switches = append(h.switches, len(h.actives))
		}
		h.actives = append(h.actives, idx)
	}
}

// assertSwitchesWarm pins the make-before-break invariant: at every switch
// moment, the incoming relay's last warmup samples were all genuinely
// received — the canceller is never handed a stream whose window still
// holds concealed samples.
func (h *failoverHarness) assertSwitchesWarm(warmup int) {
	h.t.Helper()
	for _, at := range h.switches {
		relay := h.actives[at]
		if at < warmup {
			h.t.Fatalf("switch to relay %d at step %d, before %d samples of history exist", relay, at, warmup)
		}
		// The window ends at the sample consumed in the switching step.
		for j := at - warmup + 1; j <= at; j++ {
			if !h.history[relay][j] {
				h.t.Errorf("switch to relay %d at step %d: its sample %d (within the %d-sample warm-up window) was concealed",
					relay, at, j, warmup)
				break
			}
		}
	}
}

// TestFailoverSimultaneousOutageStaggeredRecovery covers the worst case
// the single-outage tests skip: every relay's link dies at once, then the
// relays come back one at a time. The failover must hold position while
// nothing is warm (no thrash between equally dead relays), adopt the
// first relay only after its stream has flushed the concealment from its
// window, and never — at any switch — land on a relay whose warm-up
// window still holds concealed samples.
func TestFailoverSimultaneousOutageStaggeredRecovery(t *testing.T) {
	const warmup = 96
	h := newFailoverHarness(t, FailoverConfig{
		Relays:             3,
		EWMAAlpha:          1.0 / 32,
		UnhealthyThreshold: 0.3,
		SwitchMargin:       0.05,
		HoldSamples:        16,
		WarmupSamples:      warmup,
	})

	h.feed(300, []bool{true, true, true}) // converge on relay 0
	if h.f.Active() != 0 {
		t.Fatalf("active = %d on healthy links, want 0", h.f.Active())
	}

	// Simultaneous multi-relay outage: every stream concealed.
	h.feed(500, []bool{false, false, false})
	if got := len(h.switches); got != 0 {
		t.Fatalf("failover made %d switches while every relay was dead, want 0 (no thrash between dead relays)", got)
	}

	// Staggered recovery: relay 2 first, then relay 1, then relay 0.
	h.feed(40, []bool{false, false, true}) // relay 2 back but not yet warm
	if h.f.Active() != 0 {
		t.Fatalf("active = %d only %d samples into relay 2's recovery (warm-up %d), want 0",
			h.f.Active(), 40, warmup)
	}
	h.feed(400, []bool{false, false, true})
	if h.f.Active() != 2 {
		t.Fatalf("active = %d after relay 2 recovered and warmed, want 2 (health %v)", h.f.Active(), h.f.Health())
	}
	h.feed(400, []bool{false, true, true}) // relay 1 back; relay 2 already fine — no reason to move
	if h.f.Active() != 2 {
		t.Fatalf("active = %d after relay 1 recovered, want 2 still", h.f.Active())
	}
	h.feed(800, []bool{true, true, true}) // relay 0 (standing preference) back
	if h.f.Active() != 0 {
		t.Fatalf("active = %d after full recovery, want the preferred relay 0 (health %v)", h.f.Active(), h.f.Health())
	}

	h.assertSwitchesWarm(warmup)
}

// TestFailoverColdRelayNeverAdopted pins the gate directly: a relay whose
// link is flapping fast enough that it never accumulates WarmupSamples
// consecutive real samples is never switched to, even when the active
// relay is dead and the flapper's smoothed health looks better.
func TestFailoverColdRelayNeverAdopted(t *testing.T) {
	const warmup = 64
	h := newFailoverHarness(t, FailoverConfig{
		Relays:             2,
		EWMAAlpha:          1.0 / 32,
		UnhealthyThreshold: 0.3,
		SwitchMargin:       0.05,
		HoldSamples:        16,
		WarmupSamples:      warmup,
	})
	h.feed(200, []bool{true, true})
	if h.f.Active() != 0 {
		t.Fatalf("active = %d, want 0", h.f.Active())
	}
	// Relay 0 dies outright; relay 1 flaps with a 16-sample period — its
	// EWMA health stays far better than the dead relay's, but it never
	// holds warmup consecutive real samples.
	real := []bool{false, true}
	for i := 0; i < 2000; i++ {
		if i%16 == 0 {
			real[1] = false
		} else {
			real[1] = true
		}
		h.feed(1, real)
	}
	if h.f.Active() != 0 {
		t.Fatalf("failover adopted the flapping relay (active = %d); its stream never warmed", h.f.Active())
	}
	// The flapper steadies; now it warms and the failover moves.
	h.feed(400, []bool{false, true})
	if h.f.Active() != 1 {
		t.Fatalf("active = %d after the flapper steadied, want 1", h.f.Active())
	}
	h.assertSwitchesWarm(warmup)
}
