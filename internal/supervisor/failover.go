package supervisor

import (
	"fmt"

	"mute/internal/relaysel"
)

// FailoverConfig parameterizes multi-relay failover.
type FailoverConfig struct {
	// Relays is the number of forwarded streams.
	Relays int
	// EWMAAlpha smooths each relay's concealment ratio (default 1/256).
	EWMAAlpha float64
	// UnhealthyThreshold is the smoothed concealment ratio above which a
	// relay is ineligible (default 0.25).
	UnhealthyThreshold float64
	// SwitchMargin is how much lower (absolute ratio) a challenger's
	// health must be before the failover abandons the current relay
	// (default 0.1) — hysteresis against flapping between two mediocre
	// links.
	SwitchMargin float64
	// HoldSamples is the minimum dwell on a relay after a switch
	// (default 2048).
	HoldSamples int
	// WarmupSamples is the make-before-break gate: a relay other than the
	// active one is only switchable-to after delivering this many
	// consecutive real (unconcealed) samples, so the canceller never
	// starts consuming a stream whose recent window still holds
	// concealment zeros (default 64 — sized to cover the non-causal
	// gradient window of the cancellers this failover feeds).
	WarmupSamples int
}

func (c *FailoverConfig) fill() error {
	if c.Relays <= 0 {
		return fmt.Errorf("supervisor: failover needs at least one relay, got %d", c.Relays)
	}
	if c.EWMAAlpha <= 0 {
		c.EWMAAlpha = 1.0 / 256
	}
	if c.UnhealthyThreshold <= 0 {
		c.UnhealthyThreshold = 0.25
	}
	if c.SwitchMargin <= 0 {
		c.SwitchMargin = 0.1
	}
	if c.HoldSamples <= 0 {
		c.HoldSamples = 2048
	}
	if c.WarmupSamples <= 0 {
		c.WarmupSamples = 64
	}
	return nil
}

// Failover selects which relay's forwarded stream feeds the canceller. It
// layers link health over acoustic preference: the relaysel.Tracker keeps
// answering "which relay hears the noise source earliest?" (Section 4.2's
// periodic GCC-PHAT re-selection) while per-relay concealment EWMAs answer
// "which relays are actually delivering frames?". The acoustically best
// relay wins whenever it is healthy; when its link dies the failover moves
// to the healthiest alternative and returns once the preferred relay's
// link recovers by a clear margin.
type Failover struct {
	cfg      FailoverConfig
	tracker  *relaysel.Tracker
	ewma     []float64
	cleanRun []int // consecutive real samples per relay (warm-up gate)
	active   int
	held     int
	t        int64
	moves    int
}

// NewFailover wraps a tracker (which may be nil when acoustic re-selection
// is not wanted; relay 0 is then the standing preference).
func NewFailover(cfg FailoverConfig, tracker *relaysel.Tracker) (*Failover, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	return &Failover{
		cfg:      cfg,
		tracker:  tracker,
		ewma:     make([]float64, cfg.Relays),
		cleanRun: make([]int, cfg.Relays),
		held:     cfg.HoldSamples, // free to switch immediately at start
	}, nil
}

// Step feeds one sample period: the local (error-mic) sample, one
// forwarded sample per relay, and each relay's concealment flag (true =
// genuinely received). It returns the relay index whose stream the
// canceller should consume this period.
func (f *Failover) Step(local float64, forwarded []float64, real []bool) (int, error) {
	if len(forwarded) != f.cfg.Relays || len(real) != f.cfg.Relays {
		return 0, fmt.Errorf("supervisor: failover fed %d/%d streams, want %d",
			len(forwarded), len(real), f.cfg.Relays)
	}
	for i, r := range real {
		x := 1.0
		if r {
			x = 0
			f.cleanRun[i]++
		} else {
			f.cleanRun[i] = 0
		}
		f.ewma[i] += f.cfg.EWMAAlpha * (x - f.ewma[i])
	}
	if f.tracker != nil {
		if _, err := f.tracker.Push(local, forwarded); err != nil {
			return 0, err
		}
	}
	f.t++
	if f.held < f.cfg.HoldSamples {
		f.held++
		return f.active, nil
	}

	// The acoustic preference: the tracker's pick when it has one, relay 0
	// as the standing preference when re-selection is disabled, and the
	// current association while a tracker is still warming up.
	preferred := f.active
	if f.tracker == nil {
		preferred = 0
	} else if cur := f.tracker.Current(); cur >= 0 {
		preferred = cur
	}
	// The acoustic preference wins whenever its link is healthy — with
	// hysteresis at half the threshold so a link hovering at the boundary
	// does not pull the association back and forth — and warm: a stream
	// whose recent window still holds concealment zeros is never adopted,
	// however healthy its smoothed ratio looks.
	if preferred != f.active && f.ewma[preferred] < f.cfg.UnhealthyThreshold/2 && f.warm(preferred) {
		f.switchTo(preferred)
		return f.active, nil
	}
	// Otherwise move only when the active link has gone unhealthy and a
	// clearly healthier — and warm — alternative exists. During a total
	// outage (every stream concealed) nothing is warm and the failover
	// holds position rather than thrash between equally dead relays; the
	// first relay to deliver WarmupSamples consecutive real samples wins.
	if f.ewma[f.active] >= f.cfg.UnhealthyThreshold {
		best := f.active
		for i, e := range f.ewma {
			if i != f.active && !f.warm(i) {
				continue
			}
			if e < f.ewma[best] {
				best = i
			}
		}
		if best != f.active && f.ewma[best]+f.cfg.SwitchMargin <= f.ewma[f.active] {
			f.switchTo(best)
		}
	}
	return f.active, nil
}

// warm reports whether a relay's stream has delivered enough consecutive
// real samples that switching to it cannot feed the canceller concealed
// reference.
func (f *Failover) warm(relay int) bool {
	return f.cleanRun[relay] >= f.cfg.WarmupSamples
}

func (f *Failover) switchTo(relay int) {
	f.active = relay
	f.held = 0
	f.moves++
}

// Active returns the currently selected relay.
func (f *Failover) Active() int { return f.active }

// Switches returns how many relay moves the failover has made.
func (f *Failover) Switches() int { return f.moves }

// Health returns a copy of the per-relay smoothed concealment ratios.
func (f *Failover) Health() []float64 {
	return append([]float64(nil), f.ewma...)
}
