package supervisor

import (
	"math"
	"reflect"
	"testing"

	"mute/internal/audio"
	"mute/internal/core"
	"mute/internal/headphone"
)

// testPair builds a small LANC (N=4, L=8, loss-aware) and a matching local
// fallback for ladder tests.
func testPair(t *testing.T) (*core.LANC, *headphone.ANC) {
	t.Helper()
	lanc, err := core.New(core.Config{
		NonCausalTaps: 4,
		CausalTaps:    8,
		Mu:            0.1,
		Normalized:    true,
		SecondaryPath: []float64{1},
		LossAware:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	hcfg := headphone.DefaultConfig(8000, []float64{1})
	hcfg.Taps = 16
	fb, err := headphone.NewANC(hcfg)
	if err != nil {
		t.Fatal(err)
	}
	return lanc, fb
}

// fastConfig is a supervisor tuning scaled down so ladder mechanics play
// out within a few hundred samples.
func fastConfig() Config {
	return Config{
		EWMAAlpha:         1.0 / 16,
		DegradeThreshold:  0.2,
		FallbackThreshold: 0.5,
		StarvationRun:     12,
		DownDwell:         8,
		UpDwell:           32,
		ProbeInitial:      16,
		ProbeMax:          64,
		CrossfadeSamples:  4,
		DegradedFraction:  0.5,
	}
}

// drive runs the supervisor over a mask schedule with a deterministic
// reference and a simple unit acoustic loop, returning the report.
func drive(t *testing.T, s *Supervisor, mask []bool) Report {
	t.Helper()
	gen := audio.NewWhiteNoise(2, 8000, 0.3)
	e := 0.0
	for _, real := range mask {
		x := gen.Next()
		fwd := x
		if !real {
			fwd = 0 // concealment zero-fills
		}
		a := s.Step(fwd, x, e, real)
		e = 0.6*x + a
	}
	return s.Report()
}

// pattern builds a mask schedule from (count, real) runs.
func pattern(runs ...int) []bool {
	var out []bool
	real := true
	for _, n := range runs {
		for i := 0; i < n; i++ {
			out = append(out, real)
		}
		real = !real
	}
	return out
}

// moves reduces a report to its (From, To) pairs.
func moves(r Report) [][2]State {
	var out [][2]State
	for _, tr := range r.Transitions {
		out = append(out, [2]State{tr.From, tr.To})
	}
	return out
}

// TestLadderTransitions is the table-driven dwell/hysteresis suite: each
// case is a concealment schedule and the exact ladder walk it must cause.
func TestLadderTransitions(t *testing.T) {
	cases := []struct {
		name  string
		mask  []bool
		want  [][2]State
		final State
	}{
		{
			name:  "clean link never leaves LANC",
			mask:  pattern(400),
			want:  nil,
			final: StateLANC,
		},
		{
			name: "glitch below threshold and dwell is ridden out",
			// Two concealed samples push the EWMA to ~0.12, under the 0.2
			// demote threshold; no breach ever accumulates.
			mask:  pattern(100, 2, 300),
			want:  nil,
			final: StateLANC,
		},
		{
			name: "sustained moderate loss degrades, recovery promotes",
			// One concealed sample in three sustains an EWMA near 0.33 —
			// over the degrade threshold, under the fallback one, and with
			// no run long enough to starve. The long clean tail then decays
			// the EWMA below half the threshold with a clean run past
			// UpDwell.
			mask:  append(pattern(100), append(pattern(repeat3(200)...), pattern(400)...)...),
			want:  [][2]State{{StateLANC, StateDegraded}, {StateDegraded, StateLANC}},
			final: StateLANC,
		},
		{
			name: "outage walks the ladder down and a probe walks it back",
			// A 60-sample total outage: the EWMA breach demotes to
			// DEGRADED after the dwell, the starvation run then forces
			// FALLBACK, and after the link returns a backoff probe finds
			// it healthy and promotes straight back to LANC.
			mask: pattern(100, 60, 600),
			want: [][2]State{
				{StateLANC, StateDegraded},
				{StateDegraded, StateFallback},
				{StateFallback, StateLANC},
			},
			final: StateLANC,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			lanc, fb := testPair(t)
			s, err := New(fastConfig(), lanc, fb)
			if err != nil {
				t.Fatal(err)
			}
			rep := drive(t, s, tc.mask)
			if got := moves(rep); !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("transitions = %v, want %v", got, tc.want)
			}
			if rep.FinalState != tc.final {
				t.Fatalf("final state = %v, want %v", rep.FinalState, tc.final)
			}
			var total int64
			for _, n := range rep.TimeInState {
				total += n
			}
			if total != int64(len(tc.mask)) {
				t.Fatalf("TimeInState sums to %d, want %d", total, len(tc.mask))
			}
		})
	}
}

// repeat3 builds runs of (2 real, 1 concealed) totalling about n samples.
func repeat3(n int) []int {
	var runs []int
	for i := 0; i < n/3; i++ {
		runs = append(runs, 2, 1)
	}
	return runs
}

// TestCleanLinkBitIdentity pins the supervisor's zero-cost contract: on a
// link with no concealment the supervised output is bit-identical to the
// wrapped LANC stepped directly.
func TestCleanLinkBitIdentity(t *testing.T) {
	lancA, fb := testPair(t)
	lancB, _ := testPair(t)
	s, err := New(fastConfig(), lancA, fb)
	if err != nil {
		t.Fatal(err)
	}
	gen := audio.NewWhiteNoise(9, 8000, 0.3)
	eS, eR := 0.0, 0.0
	for i := 0; i < 2000; i++ {
		x := gen.Next()
		aS := s.Step(x, x, eS, true)
		aR := lancB.StepMasked(x, eR, true)
		if aS != aR {
			t.Fatalf("sample %d: supervised %v != raw %v", i, aS, aR)
		}
		eS = 0.6*x + aS
		eR = 0.6*x + aR
	}
	if got := s.Report().Transitions; len(got) != 0 {
		t.Fatalf("clean link produced transitions: %v", got)
	}
}

// TestStarvationBypassesDwell: a dead link must not wait out the EWMA
// dwell — the starvation run forces FALLBACK the moment it is reached,
// even with a dwell far longer than the whole schedule.
func TestStarvationBypassesDwell(t *testing.T) {
	lanc, fb := testPair(t)
	cfg := fastConfig()
	cfg.DownDwell = 10000
	s, err := New(cfg, lanc, fb)
	if err != nil {
		t.Fatal(err)
	}
	rep := drive(t, s, pattern(50, 20))
	want := [][2]State{{StateLANC, StateFallback}}
	if got := moves(rep); !reflect.DeepEqual(got, want) {
		t.Fatalf("transitions = %v, want %v", got, want)
	}
	tr := rep.Transitions[0]
	if tr.At != 50+int64(cfg.StarvationRun)-1 {
		t.Fatalf("starvation demotion at %d, want %d", tr.At, 50+cfg.StarvationRun-1)
	}
}

// TestProbeBackoffDoubles: while the link stays dead, reacquisition probes
// must fire on an exponential schedule capped at ProbeMax.
func TestProbeBackoffDoubles(t *testing.T) {
	lanc, fb := testPair(t)
	s, err := New(fastConfig(), lanc, fb)
	if err != nil {
		t.Fatal(err)
	}
	// 50 clean, then dead for the rest: probes at +16, +32, +64, +64...
	rep := drive(t, s, pattern(50, 400))
	if rep.Probes < 4 {
		t.Fatalf("only %d probes over a 400-sample outage", rep.Probes)
	}
	if rep.Probes != rep.FailedProbes {
		t.Fatalf("probes %d != failed %d on a never-recovering link", rep.Probes, rep.FailedProbes)
	}
	// Entering FALLBACK at starvation (sample 50+11), probes at 16, then
	// 32, then 64, 64... over the remaining ~389 samples: 16+32+64=112,
	// then every 64 → 4 more ≈ 8 total; assert the cap keeps it bounded.
	if rep.Probes > 9 {
		t.Fatalf("%d probes — backoff cap not applied", rep.Probes)
	}
	if rep.FinalState != StateFallback {
		t.Fatalf("final state %v, want FALLBACK", rep.FinalState)
	}
	if rep.WarmStarts != 1 {
		t.Fatalf("WarmStarts = %d, want 1", rep.WarmStarts)
	}
}

// TestPassthroughDemotionAndRecovery: a fallback whose residual dwarfs the
// open-ear field must mute itself, then probe back to FALLBACK once the
// residual story improves.
func TestPassthroughDemotionAndRecovery(t *testing.T) {
	lanc, fb := testPair(t)
	s, err := New(fastConfig(), lanc, fb)
	if err != nil {
		t.Fatal(err)
	}
	// Walk into FALLBACK with an outage.
	gen := audio.NewWhiteNoise(4, 8000, 0.3)
	e := 0.0
	step := func(real bool, eVal float64) float64 {
		x := gen.Next()
		fwd := x
		if !real {
			fwd = 0
		}
		return s.Step(fwd, x, eVal, real)
	}
	for i := 0; i < 50; i++ {
		step(true, e)
	}
	for i := 0; i < 20; i++ {
		step(false, 0.1)
	}
	if s.State() != StateFallback {
		t.Fatalf("setup failed: state %v, want FALLBACK", s.State())
	}
	// Feed a residual far louder than the open field: ePow EWMA blows past
	// PassthroughFactor × openPow within the dwell.
	for i := 0; i < 200 && s.State() == StateFallback; i++ {
		step(false, 5.0)
	}
	if s.State() != StatePassthrough {
		t.Fatalf("state %v after runaway residual, want PASSTHROUGH", s.State())
	}
	// PASSTHROUGH emits silence.
	if out := step(false, 5.0); out != 0 {
		// The crossfade tail may still carry the old leg; skip past it.
		for i := 0; i < 8; i++ {
			out = step(false, 5.0)
		}
		if out != 0 {
			t.Fatalf("PASSTHROUGH emitted %v, want 0", out)
		}
	}
	// Link recovers with a sane residual: a probe returns to FALLBACK.
	for i := 0; i < 600 && s.State() == StatePassthrough; i++ {
		step(true, 0.05)
	}
	if s.State() != StateFallback {
		t.Fatalf("state %v after recovery, want FALLBACK", s.State())
	}
}

// TestCrossfadeIsBounded: across a transition the output must move
// smoothly — no sample may jump beyond what the two legs could produce.
func TestCrossfadeIsBounded(t *testing.T) {
	lanc, fb := testPair(t)
	s, err := New(fastConfig(), lanc, fb)
	if err != nil {
		t.Fatal(err)
	}
	gen := audio.NewWhiteNoise(6, 8000, 0.3)
	e := 0.0
	var prev float64
	maxJump := 0.0
	mask := pattern(200, 60, 600)
	for i, real := range mask {
		x := gen.Next()
		fwd := x
		if !real {
			fwd = 0
		}
		a := s.Step(fwd, x, e, real)
		e = 0.6*x + a
		if i > 0 {
			if d := math.Abs(a - prev); d > maxJump {
				maxJump = d
			}
		}
		prev = a
	}
	// The reference is bounded by ~0.3·3σ; a click would show up as a
	// sample-to-sample jump far beyond the signal scale.
	if maxJump > 2 {
		t.Fatalf("output jumped by %g across a transition — crossfade broken", maxJump)
	}
	if len(s.Report().Transitions) == 0 {
		t.Fatal("schedule produced no transitions; test is vacuous")
	}
}

// TestDeterministicTransitionTrace: the same seeded schedule must yield a
// byte-identical transition list on every run.
func TestDeterministicTransitionTrace(t *testing.T) {
	run := func() Report {
		lanc, fb := testPair(t)
		s, err := New(fastConfig(), lanc, fb)
		if err != nil {
			t.Fatal(err)
		}
		return drive(t, s, pattern(100, 60, 300, 30, 500))
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.Transitions, b.Transitions) {
		t.Fatalf("transition traces differ:\n%v\n%v", a.Transitions, b.Transitions)
	}
	if a.Probes != b.Probes || a.TimeInState != b.TimeInState {
		t.Fatal("probe/time-in-state accounting differs between identical runs")
	}
}

// TestFailoverSwitchesAndReturns: relay 0 is acoustically preferred; when
// its link dies the failover moves to relay 1, and when it recovers the
// preference pulls the association back.
func TestFailoverSwitchesAndReturns(t *testing.T) {
	f, err := NewFailover(FailoverConfig{
		Relays:             2,
		EWMAAlpha:          1.0 / 16,
		UnhealthyThreshold: 0.3,
		SwitchMargin:       0.1,
		HoldSamples:        32,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	gen := audio.NewWhiteNoise(8, 8000, 0.3)
	feed := func(n int, real0 bool) {
		for i := 0; i < n; i++ {
			x := gen.Next()
			if _, err := f.Step(x, []float64{x, x}, []bool{real0, true}); err != nil {
				t.Fatal(err)
			}
		}
	}
	feed(100, true)
	if f.Active() != 0 {
		t.Fatalf("active = %d on healthy links, want 0", f.Active())
	}
	feed(200, false) // relay 0 outage
	if f.Active() != 1 {
		t.Fatalf("active = %d during relay-0 outage, want 1", f.Active())
	}
	if f.Switches() != 1 {
		t.Fatalf("switches = %d, want 1", f.Switches())
	}
	feed(600, true) // relay 0 recovers; with no tracker, relay 0 stays preferred
	if f.Active() != 0 {
		t.Fatalf("active = %d after relay-0 recovery, want 0 (health %v)", f.Active(), f.Health())
	}
	if f.Switches() != 2 {
		t.Fatalf("switches = %d, want 2", f.Switches())
	}
}
