package supervisor

import (
	"fmt"

	"mute/internal/core"
	"mute/internal/headphone"
	"mute/internal/telemetry"
)

// State is a rung of the degradation ladder, ordered healthiest first.
type State int

const (
	// StateLANC is full lookahead-aware cancellation.
	StateLANC State = iota
	// StateDegraded is LANC with a shrunken non-causal tap window.
	StateDegraded
	// StateFallback is the local causal FxLMS canceller.
	StateFallback
	// StatePassthrough mutes the anti-noise entirely.
	StatePassthrough
	numStates
)

// String names the state for traces and reports.
func (s State) String() string {
	switch s {
	case StateLANC:
		return "LANC"
	case StateDegraded:
		return "DEGRADED"
	case StateFallback:
		return "FALLBACK"
	case StatePassthrough:
		return "PASSTHROUGH"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Config parameterizes the supervisor. DefaultConfig fills every field the
// caller leaves zero.
type Config struct {
	// EWMAAlpha is the health estimator's smoothing constant (default
	// 1/256 ≈ a 32 ms horizon at 8 kHz).
	EWMAAlpha float64
	// DegradeThreshold is the concealment ratio above which LANC demotes
	// to DEGRADED (default 0.05).
	DegradeThreshold float64
	// FallbackThreshold is the concealment ratio above which the ladder
	// demotes to FALLBACK (default 0.25).
	FallbackThreshold float64
	// StarvationRun is a consecutive-concealed run that forces an
	// immediate demotion to FALLBACK, bypassing the dwell — a dead link
	// should not wait out a ratio filter (default: the wrapped filter's
	// window length N+L+1).
	StarvationRun int
	// PassthroughFactor demotes FALLBACK to PASSTHROUGH when the
	// fallback's residual power EWMA exceeds this multiple of the
	// open-ear power EWMA — the fallback is actively hurting (default 4).
	PassthroughFactor float64
	// DownDwell is how many consecutive samples a threshold breach must
	// persist before a demotion fires (default 64).
	DownDwell int
	// UpDwell is the healthy run required before any promotion
	// (default 800, 100 ms at 8 kHz).
	UpDwell int
	// ProbeInitial is the first reacquisition probe delay in samples
	// after entering FALLBACK or PASSTHROUGH (default 400).
	ProbeInitial int
	// ProbeMax caps the exponential probe backoff (default 8000).
	ProbeMax int
	// CrossfadeSamples is the transition crossfade length (default 64,
	// 8 ms at 8 kHz — comfortably click-free, short enough that the old
	// rung's stale anti-noise barely lingers).
	CrossfadeSamples int
	// DegradedFraction is the fraction of the non-causal window kept
	// live in DEGRADED (default 0.5).
	DegradedFraction float64
	// DriftDegradePPM demotes LANC to DEGRADED while the estimated clock
	// skew magnitude reported via ObserveDrift stays at or above it, and
	// blocks promotions until the skew falls back under — misaligned
	// far-future taps are the first casualties of drift, exactly the taps
	// DEGRADED parks (default 250). Ignored until ObserveDrift is called,
	// so drift-blind deployments are unchanged.
	DriftDegradePPM float64
	// DriftFallbackPPM demotes to FALLBACK: past it no realizable tap
	// window stays aligned and the local causal canceller is the better
	// ear (default 4× DriftDegradePPM).
	DriftFallbackPPM float64
	// Trace, when non-nil, receives supervisor events on the sample
	// clock under telemetry.StageSupervisor.
	Trace *telemetry.Trace
}

// DefaultConfig returns the standard supervisor tuning for a canceller
// with the given tap counts.
func DefaultConfig() Config {
	c := Config{}
	c.fill(32 + 160)
	return c
}

// fill applies defaults; window is the wrapped filter's N+L.
func (c *Config) fill(window int) {
	if c.EWMAAlpha <= 0 {
		c.EWMAAlpha = 1.0 / 256
	}
	if c.DegradeThreshold <= 0 {
		c.DegradeThreshold = 0.05
	}
	if c.FallbackThreshold <= 0 {
		c.FallbackThreshold = 0.25
	}
	if c.StarvationRun <= 0 {
		c.StarvationRun = window + 1
	}
	if c.PassthroughFactor <= 0 {
		c.PassthroughFactor = 4
	}
	if c.DownDwell <= 0 {
		c.DownDwell = 64
	}
	if c.UpDwell <= 0 {
		c.UpDwell = 800
	}
	if c.ProbeInitial <= 0 {
		c.ProbeInitial = 400
	}
	if c.ProbeMax < c.ProbeInitial {
		c.ProbeMax = 8000
		if c.ProbeMax < c.ProbeInitial {
			c.ProbeMax = c.ProbeInitial
		}
	}
	if c.CrossfadeSamples <= 0 {
		c.CrossfadeSamples = 64
	}
	if c.DegradedFraction <= 0 || c.DegradedFraction >= 1 {
		c.DegradedFraction = 0.5
	}
	if c.DriftDegradePPM <= 0 {
		c.DriftDegradePPM = 250
	}
	if c.DriftFallbackPPM <= 0 {
		c.DriftFallbackPPM = 4 * c.DriftDegradePPM
	}
}

// validate rejects nonsensical explicit settings.
func (c Config) validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"EWMAAlpha", c.EWMAAlpha}, {"DegradeThreshold", c.DegradeThreshold}, {"FallbackThreshold", c.FallbackThreshold}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("supervisor: %s %g outside [0, 1]", p.name, p.v)
		}
	}
	if c.FallbackThreshold < c.DegradeThreshold {
		return fmt.Errorf("supervisor: fallback threshold %g below degrade threshold %g",
			c.FallbackThreshold, c.DegradeThreshold)
	}
	if c.DriftFallbackPPM < c.DriftDegradePPM {
		return fmt.Errorf("supervisor: drift fallback threshold %g ppm below degrade threshold %g",
			c.DriftFallbackPPM, c.DriftDegradePPM)
	}
	return nil
}

// Transition is one recorded ladder move.
type Transition struct {
	// At is the sample-clock time of the move.
	At int64
	// From and To are the rungs.
	From, To State
}

// Report summarizes a supervised run.
type Report struct {
	// Transitions lists every ladder move in order.
	Transitions []Transition
	// TimeInState counts samples spent on each rung, indexed by State.
	TimeInState [numStates]int64
	// Probes counts reacquisition probes fired; FailedProbes the subset
	// that found the link still unhealthy and doubled the backoff.
	Probes, FailedProbes int
	// WarmStarts counts fallback activations seeded from LANC's causal
	// taps.
	WarmStarts int
	// TaintedSuppressed counts crossfade samples where the LANC leg was
	// muted because concealed reference samples sat in its anti-noise
	// window.
	TaintedSuppressed int64
	// FinalState is the rung at the end of the run.
	FinalState State
	// ConcealEWMA is the final smoothed concealment ratio.
	ConcealEWMA float64
}

// Supervisor drives one canceller pair through the degradation ladder.
// It is not safe for concurrent use; one instance per simulated ear.
type Supervisor struct {
	cfg  Config
	lanc *core.LANC
	fb   *headphone.ANC

	h     health
	state State
	t     int64 // sample clock

	breachRun  int // consecutive samples the active down-threshold is breached
	taint      int // samples until the last concealed sample leaves LANC's window
	window     int // N+L of the wrapped LANC
	degradedN  int // non-causal taps kept live in DEGRADED
	fullN      int
	causalTaps int

	// Reacquisition probe state (FALLBACK / PASSTHROUGH only).
	probeWait int
	probeAt   int64

	// Crossfade state.
	fadeLeft int
	fadeFrom State

	// Residual-vs-open power EWMAs for the PASSTHROUGH demotion.
	ePow, openPow float64

	// Clock-drift posture fed by ObserveDrift; inert until the first call.
	driftPPM   float64
	driftStale int
	driftSeen  bool

	rep Report
}

// driftStaleLimit is how many consecutive unestimable drift observations
// (estimator unlocked or starved mid-run) the supervisor tolerates before
// treating the unknown skew as a degrade-level breach: an unestimable
// clock is too risky for the full window but not proof the link is dead.
const driftStaleLimit = 16

// ObserveDrift feeds the supervisor the drift estimator's view, once per
// estimator update window: ppm is the estimated relay-vs-ear skew
// magnitude (sign is irrelevant to alignment damage) and estimable is
// whether the estimate is current (estimator locked and fed). Excess
// drift joins the concealment health estimator in the ladder rules:
// sustained skew at or above DriftDegradePPM demotes LANC to DEGRADED,
// at or above DriftFallbackPPM to FALLBACK, and promotions are blocked
// until the skew clears. Never calling it leaves the ladder exactly as
// before drift awareness existed.
func (s *Supervisor) ObserveDrift(ppm float64, estimable bool) {
	if ppm < 0 {
		ppm = -ppm
	}
	if estimable {
		s.driftPPM = ppm
		s.driftStale = 0
		s.driftSeen = true
		return
	}
	if s.driftSeen && s.driftStale <= driftStaleLimit {
		s.driftStale++
	}
}

// driftExcess reports whether the drift posture breaches a ladder
// threshold. A persistently unestimable clock counts as a degrade-level
// breach only.
func (s *Supervisor) driftExcess(threshold float64) bool {
	if !s.driftSeen {
		return false
	}
	if s.driftStale > driftStaleLimit {
		return threshold <= s.cfg.DriftDegradePPM
	}
	return s.driftPPM >= threshold
}

// New wraps a canceller and its local fallback in a supervisor. Both must
// be dedicated to this supervisor: it owns their weight loads and window
// limits from here on.
func New(cfg Config, lanc *core.LANC, fallback *headphone.ANC) (*Supervisor, error) {
	if lanc == nil || fallback == nil {
		return nil, fmt.Errorf("supervisor: needs both a LANC and a fallback canceller")
	}
	window := lanc.NonCausalTaps() + lanc.CausalTaps()
	cfg.fill(window)
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &Supervisor{
		cfg:        cfg,
		lanc:       lanc,
		fb:         fallback,
		h:          health{alpha: cfg.EWMAAlpha},
		window:     window,
		fullN:      lanc.NonCausalTaps(),
		causalTaps: lanc.CausalTaps(),
	}
	s.degradedN = int(cfg.DegradedFraction * float64(s.fullN))
	return s, nil
}

// State returns the current rung.
func (s *Supervisor) State() State { return s.state }

// Report returns the run summary so far.
func (s *Supervisor) Report() Report {
	r := s.rep
	r.FinalState = s.state
	r.ConcealEWMA = s.h.ewma
	r.Transitions = append([]Transition(nil), s.rep.Transitions...)
	return r
}

// Step advances one sample period. fwd is the wirelessly forwarded
// reference sample x(t+N) (concealment-filled when real is false), local
// is the sample the ear-cup reference microphone hears now — the fallback's
// wire-free reference — and ePrev is the previous residual. It returns the
// anti-noise sample to play. On a clean link the supervisor stays in
// StateLANC and the output is bit-identical to calling the wrapped LANC's
// StepMasked directly.
func (s *Supervisor) Step(fwd, local, ePrev float64, real bool) float64 {
	s.h.observe(real)
	if !real {
		// A concealed sample enters LANC's anti-noise window at +N and
		// takes N+L+1 pushes to slide out of it.
		s.taint = s.window + 1
	} else if s.taint > 0 {
		s.taint--
	}
	// Residual/open power EWMAs prime the PASSTHROUGH demotion; same
	// alpha as the health estimator.
	s.ePow += s.cfg.EWMAAlpha * (ePrev*ePrev - s.ePow)
	s.openPow += s.cfg.EWMAAlpha * (local*local - s.openPow)

	s.maybeTransition()
	s.rep.TimeInState[s.state]++

	// Advance the legs. The wrapped LANC always consumes the forwarded
	// sample so its reference and filtered-x windows stay time-aligned for
	// a later promotion; it only adapts while its output drives the
	// residual (LANC and DEGRADED rungs).
	var outLANC, outFB float64
	fadingLANC := s.fadeLeft > 0 && s.fadeFrom <= StateDegraded
	fadingFB := s.fadeLeft > 0 && s.fadeFrom == StateFallback
	if s.state <= StateDegraded {
		outLANC = s.lanc.StepMasked(fwd, ePrev, real)
	} else {
		s.lanc.PushMasked(fwd, real)
		if fadingLANC {
			// The FALLBACK guarantee: a fading-out LANC leg is muted while
			// concealed samples contaminate its window, so concealed-
			// reference anti-noise never reaches the speaker from here.
			if s.taint > 0 {
				s.rep.TaintedSuppressed++
			} else {
				outLANC = s.lanc.AntiNoise()
			}
		}
	}
	if s.state == StateFallback {
		outFB = s.fb.Step(local, ePrev)
	} else if fadingFB {
		// Keep the fading-out fallback leg audible without adapting it on
		// a residual that no longer reflects its output.
		outFB = s.fb.Emit(local)
	}

	cur := legFor(s.state, outLANC, outFB)
	if s.fadeLeft == 0 {
		s.t++
		return cur
	}
	prev := legFor(s.fadeFrom, outLANC, outFB)
	g := float64(s.fadeLeft) / float64(s.cfg.CrossfadeSamples+1)
	s.fadeLeft--
	s.t++
	return g*prev + (1-g)*cur
}

// legFor selects a rung's output from the computed legs.
func legFor(st State, outLANC, outFB float64) float64 {
	switch st {
	case StateLANC, StateDegraded:
		return outLANC
	case StateFallback:
		return outFB
	default: // PASSTHROUGH
		return 0
	}
}

// maybeTransition evaluates the ladder rules for the current sample.
func (s *Supervisor) maybeTransition() {
	switch s.state {
	case StateLANC, StateDegraded:
		// A hard starvation run is a dead link: demote immediately.
		if s.h.run >= s.cfg.StarvationRun {
			s.moveTo(StateFallback)
			return
		}
		down := s.cfg.DegradeThreshold
		dppm := s.cfg.DriftDegradePPM
		if s.state == StateDegraded {
			down = s.cfg.FallbackThreshold
			dppm = s.cfg.DriftFallbackPPM
		}
		if s.h.ewma >= down || s.driftExcess(dppm) {
			s.breachRun++
			if s.breachRun >= s.cfg.DownDwell {
				s.moveTo(s.state + 1)
			}
			return
		}
		s.breachRun = 0
		if s.state == StateDegraded &&
			s.h.ewma < s.cfg.DegradeThreshold/2 && s.h.clean >= s.cfg.UpDwell &&
			!s.driftExcess(s.cfg.DriftDegradePPM) {
			// Hysteresis: promotion needs the ratio well under the demote
			// threshold plus a sustained clean run (and no drift breach).
			s.moveTo(StateLANC)
		}
	case StateFallback:
		if s.openPow > 0 && s.ePow > s.cfg.PassthroughFactor*s.openPow {
			s.breachRun++
			if s.breachRun >= s.cfg.DownDwell {
				s.moveTo(StatePassthrough)
				return
			}
		} else {
			s.breachRun = 0
		}
		s.probe()
	case StatePassthrough:
		s.probe()
	}
}

// probe runs the exponential-backoff reacquisition check for the bottom
// rungs. A probe that finds the link healthy promotes; one that does not
// doubles the wait.
func (s *Supervisor) probe() {
	if s.t < s.probeAt {
		return
	}
	s.rep.Probes++
	healthy := s.h.clean >= s.cfg.UpDwell && s.taint == 0 &&
		s.h.ewma < s.cfg.DegradeThreshold/2 &&
		!s.driftExcess(s.cfg.DriftDegradePPM)
	if healthy {
		if s.state == StatePassthrough {
			s.moveTo(StateFallback)
		} else {
			s.moveTo(StateLANC)
		}
		return
	}
	if s.h.clean >= s.cfg.UpDwell && s.taint == 0 &&
		s.state == StateFallback && s.h.ewma < s.cfg.FallbackThreshold/2 &&
		!s.driftExcess(s.cfg.DriftFallbackPPM) {
		// Partially recovered: the link delivers frames again but the
		// smoothed loss rate is still too high for the full window.
		s.moveTo(StateDegraded)
		return
	}
	s.rep.FailedProbes++
	s.probeWait *= 2
	if s.probeWait > s.cfg.ProbeMax {
		s.probeWait = s.cfg.ProbeMax
	}
	s.probeAt = s.t + int64(s.probeWait)
}

// moveTo performs a transition: filter reconfiguration, crossfade arming,
// bookkeeping, and the trace event.
func (s *Supervisor) moveTo(to State) {
	from := s.state
	if to == from {
		return
	}
	switch to {
	case StateLANC:
		s.lanc.LimitNonCausal(s.fullN)
	case StateDegraded:
		s.lanc.LimitNonCausal(s.degradedN)
	case StateFallback:
		// Restore the full window so a later promotion returns to the
		// paper's filter, and seed the local fallback from LANC's causal
		// taps: the room's causal inverse is the part both filters share.
		s.lanc.LimitNonCausal(s.fullN)
		s.fb.Reset()
		s.fb.WarmStart(s.lanc.Weights()[s.fullN:])
		s.rep.WarmStarts++
	}
	if to == StateFallback || to == StatePassthrough {
		s.probeWait = s.cfg.ProbeInitial
		s.probeAt = s.t + int64(s.probeWait)
	}
	s.state = to
	s.breachRun = 0
	s.fadeLeft = s.cfg.CrossfadeSamples
	s.fadeFrom = from
	s.rep.Transitions = append(s.rep.Transitions, Transition{At: s.t, From: from, To: to})
	if s.cfg.Trace != nil {
		s.cfg.Trace.Record(s.t, telemetry.StageSupervisor, "transition", map[string]float64{
			"from":         float64(from),
			"to":           float64(to),
			"conceal_ewma": s.h.ewma,
			"conceal_run":  float64(s.h.run),
		})
	}
}

// TraceState records the supervisor's periodic observable state — rung,
// health estimate, probe posture — under telemetry.StageSupervisor. All
// reads; the ladder is unaffected.
func (s *Supervisor) TraceState(tr *telemetry.Trace, t int64) {
	if tr == nil {
		return
	}
	tr.Record(t, telemetry.StageSupervisor, "state", map[string]float64{
		"state":        float64(s.state),
		"conceal_ewma": s.h.ewma,
		"conceal_run":  float64(s.h.run),
		"clean_run":    float64(s.h.clean),
		"fade_left":    float64(s.fadeLeft),
		"taint":        float64(s.taint),
	})
}
