// Package supervisor implements MUTE's relay-outage resilience: a
// link-health estimator feeding a deterministic degradation ladder that
// steps the ear device down from full lookahead-aware cancellation to a
// local causal fallback — and back — as the wireless reference comes and
// goes.
//
// The paper's system is only as good as its IoT relay link: LANC's
// non-causal taps are realizable precisely because the relay delivers
// x(t+N) early, so when the relay reboots or fades out, the lookahead
// evaporates and an unsupervised canceller adapts against concealment
// zeros. The ladder bounds that failure:
//
//	LANC        full non-causal window, the paper's algorithm
//	DEGRADED    shrunken non-causal window (core.LANC.LimitNonCausal)
//	FALLBACK    local causal FxLMS (internal/headphone), warm-started
//	            from LANC's causal taps — the Bose-class canceller the
//	            paper compares against, which needs no wireless leg
//	PASSTHROUGH anti-noise muted; passive isolation only
//
// Every demotion and promotion is dwell-gated, hysteretic, and crossfaded,
// and promotions out of FALLBACK/PASSTHROUGH are additionally paced by an
// exponential-backoff reacquisition probe so a flapping link cannot thrash
// the filters. All decisions run on the sample clock from deterministic
// inputs, so a seeded run yields a byte-identical transition trace.
package supervisor

// health is the link-health estimator. Its single per-sample input is the
// transport concealment flag (stream.JitterBuffer's PopMask verdict): a
// concealed sample is evidence of loss, jitter-buffer starvation, or a
// lookahead-budget deficit — whichever layer failed, the canceller saw a
// fabricated reference sample. From the flag it maintains the EWMA
// concealment ratio (the smoothed loss rate) and the current starvation
// run (consecutive concealed samples, the outage detector).
type health struct {
	alpha float64 // EWMA smoothing constant
	ewma  float64 // smoothed concealment ratio in [0, 1]
	run   int     // current consecutive-concealed run
	clean int     // current consecutive-real run
}

// observe folds one sample period's concealment flag into the estimate.
func (h *health) observe(real bool) {
	x := 0.0
	if real {
		h.run = 0
		h.clean++
	} else {
		x = 1
		h.run++
		h.clean = 0
	}
	h.ewma += h.alpha * (x - h.ewma)
}
