package supervisor

import (
	"testing"

	"mute/internal/audio"
)

// driveWithDrift runs the supervisor over a clean link while feeding
// ObserveDrift(ppm(t), estimable(t)) every obsEvery samples.
func driveWithDrift(t *testing.T, s *Supervisor, n, obsEvery int, ppm func(int) float64, estimable func(int) bool) Report {
	t.Helper()
	gen := audio.NewWhiteNoise(2, 8000, 0.3)
	e := 0.0
	for i := 0; i < n; i++ {
		if i%obsEvery == 0 {
			s.ObserveDrift(ppm(i), estimable(i))
		}
		x := gen.Next()
		a := s.Step(x, x, e, true)
		e = 0.6*x + a
	}
	return s.Report()
}

func driftConfig() Config {
	c := fastConfig()
	c.DriftDegradePPM = 100
	c.DriftFallbackPPM = 300
	return c
}

// TestDriftLadderDegradeAndFallback checks sustained skew walks the
// ladder: past DriftDegradePPM to DEGRADED, past DriftFallbackPPM to
// FALLBACK, on an otherwise clean link.
func TestDriftLadderDegradeAndFallback(t *testing.T) {
	lanc, fb := testPair(t)
	s, err := New(driftConfig(), lanc, fb)
	if err != nil {
		t.Fatal(err)
	}
	always := func(int) bool { return true }
	driveWithDrift(t, s, 400, 8, func(int) float64 { return 150 }, always)
	if s.State() != StateDegraded {
		t.Fatalf("state %v after sustained 150 ppm (degrade at 100), want DEGRADED", s.State())
	}
	driveWithDrift(t, s, 400, 8, func(int) float64 { return 400 }, always)
	if s.State() != StateFallback {
		t.Fatalf("state %v after sustained 400 ppm (fallback at 300), want FALLBACK", s.State())
	}
}

// TestDriftLadderBlocksPromotionUntilClear checks a skewed clock pins the
// ladder down, and clearing the skew lets it climb back to LANC.
func TestDriftLadderBlocksPromotionUntilClear(t *testing.T) {
	lanc, fb := testPair(t)
	s, err := New(driftConfig(), lanc, fb)
	if err != nil {
		t.Fatal(err)
	}
	always := func(int) bool { return true }
	driveWithDrift(t, s, 400, 8, func(int) float64 { return 150 }, always)
	if s.State() != StateDegraded {
		t.Fatalf("setup: state %v, want DEGRADED", s.State())
	}
	// Skew persists: no promotion however long the link stays clean.
	driveWithDrift(t, s, 2000, 8, func(int) float64 { return 150 }, always)
	if s.State() != StateDegraded {
		t.Fatalf("state %v while skew persists, want DEGRADED held", s.State())
	}
	// Skew clears (oscillator re-disciplined): the ladder recovers.
	driveWithDrift(t, s, 4000, 8, func(int) float64 { return 5 }, always)
	if s.State() != StateLANC {
		t.Errorf("state %v after skew cleared, want LANC again", s.State())
	}
	want := [][2]State{{StateLANC, StateDegraded}, {StateDegraded, StateLANC}}
	if got := moves(s.Report()); len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("ladder walk %v, want %v", got, want)
	}
}

// TestDriftUnestimableCountsAsDegrade checks a persistently unestimable
// clock (estimator starved mid-run) is treated as a degrade-level breach
// but never forces FALLBACK on its own.
func TestDriftUnestimableCountsAsDegrade(t *testing.T) {
	lanc, fb := testPair(t)
	s, err := New(driftConfig(), lanc, fb)
	if err != nil {
		t.Fatal(err)
	}
	// Healthy, estimable start, then the estimator goes dark.
	driveWithDrift(t, s, 200, 8, func(int) float64 { return 5 }, func(int) bool { return true })
	if s.State() != StateLANC {
		t.Fatalf("setup: state %v, want LANC", s.State())
	}
	driveWithDrift(t, s, 2000, 8, func(int) float64 { return 0 }, func(int) bool { return false })
	if s.State() != StateDegraded {
		t.Errorf("state %v with an unestimable clock, want DEGRADED (and only DEGRADED)", s.State())
	}
}

// TestDriftNeverObservedIsInert pins the opt-in contract: a supervisor
// that never sees ObserveDrift behaves exactly as one predating drift
// awareness — the clean-link run stays in LANC with no transitions.
func TestDriftNeverObservedIsInert(t *testing.T) {
	lanc, fb := testPair(t)
	s, err := New(driftConfig(), lanc, fb)
	if err != nil {
		t.Fatal(err)
	}
	rep := drive(t, s, pattern(4000))
	if s.State() != StateLANC || len(rep.Transitions) != 0 {
		t.Errorf("clean run without ObserveDrift: state %v, %d transitions, want LANC and none",
			s.State(), len(rep.Transitions))
	}
}
