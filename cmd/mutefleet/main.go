// Command mutefleet is the fleet load generator: it drives N simulated
// users — each a seeded relay with its own loss pattern, outages, and
// optional oscillator skew — against one in-process session server, and
// reports the capacity numbers that matter for serving at scale:
// processing cost per session-block, realtime sessions per core, and
// (in paced mode) the block-deadline miss rate over the real UDP
// transport.
//
// Paced mode (the default) runs the full path: every user's frames are
// enveloped with their session id, written to one UDP socket, read back
// by the server's socket, demultiplexed into per-session jitter buffers,
// and processed at integer-exact block deadlines:
//
//	mutefleet -sessions 500 -duration 5s
//
// Throughput mode skips the transport and the pacing and runs ticks back
// to back — the raw sessions-per-core measurement:
//
//	mutefleet -sessions 64 -throughput -blocks 500
//
// A smoke invocation for CI scale testing:
//
//	mutefleet -sessions 1000 -duration 2s
//
// Chaos mode runs the deterministic lifecycle torture schedule instead of
// a load measurement: seeded churn storms, malformed floods, a poisoned
// session, an overload spike, and a mid-run drain/adopt handoff, audited
// against the fleet's invariants (exit 1 on any violation):
//
//	mutefleet -chaos -chaos-blocks 256 -seed 1
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"mute/internal/fleet"
	"mute/internal/stream"
	"mute/internal/telemetry"
)

func main() {
	var (
		sessions   = flag.Int("sessions", 64, "concurrent simulated users")
		duration   = flag.Duration("duration", 5*time.Second, "paced run length (e.g. 2s, 500ms)")
		throughput = flag.Bool("throughput", false, "unpaced mode: run ticks back to back, no transport")
		blocks     = flag.Int("blocks", 200, "ticks to run in throughput mode")
		frame      = flag.Int("frame", 80, "samples per frame / processing block")
		rate       = flag.Float64("rate", 8000, "sample rate in Hz")
		causal     = flag.Int("causal-taps", 48, "LANC causal taps per session")
		noncausal  = flag.Int("max-noncausal", 16, "cap on planned non-causal taps")
		fdafBlock  = flag.Int("fdaf-block", 0, "run sessions on the FDAF path with this block size (0 = time domain)")
		shards     = flag.Int("shards", 1, "ProcessTick goroutine fan-out")
		loss       = flag.Float64("loss", 0.02, "per-user frame loss probability")
		burst      = flag.Float64("burst", 2, "mean loss burst length (Gilbert–Elliott when > 1)")
		reorder    = flag.Float64("reorder", 0.02, "per-user reorder probability")
		dup        = flag.Float64("dup", 0.01, "per-user duplicate probability")
		skewPPM    = flag.Float64("skew-ppm", 80, "oscillator skew applied to every third user")
		jsonOut    = flag.String("json", "", "write the run summary as JSON to this file")
		showTelem  = flag.Bool("telemetry", false, "print the merged fleet telemetry snapshot")

		chaos       = flag.Bool("chaos", false, "run the deterministic chaos schedule and audit lifecycle invariants")
		chaosBlocks = flag.Int("chaos-blocks", 256, "chaos mode: total ticks across both servers")
		chaosPeers  = flag.Int("chaos-peers", 24, "chaos mode: long-lived background sessions")
		seed        = flag.Uint64("seed", 1, "chaos mode: impairment seed (replays are exact)")
	)
	flag.Parse()

	if *chaos {
		runChaos(fleet.ChaosConfig{
			Blocks: *chaosBlocks,
			Peers:  *chaosPeers,
			Seed:   *seed,
			Shards: *shards,
		}, *jsonOut)
		return
	}

	cfg := fleet.LoadConfig{
		Sessions:   *sessions,
		Duration:   *duration,
		Blocks:     *blocks,
		Throughput: *throughput,
		Profile: fleet.Profile{
			SampleRate:       *rate,
			FrameSamples:     *frame,
			CausalTaps:       *causal,
			MaxNonCausalTaps: *noncausal,
			FDAFBlock:        *fdafBlock,
		},
		Faults: stream.LossParams{
			Seed: 1, Loss: *loss, MeanBurst: *burst,
			Reorder: *reorder, Duplicate: *dup,
		},
		SkewPPM: *skewPPM,
		Shards:  *shards,
	}
	// The telemetry snapshot needs the server alive after the run; RunLoad
	// owns the server, so merged metrics ride back in the result. For the
	// -telemetry view, run the merge through a shared registry.
	var merged *telemetry.Registry
	if *showTelem {
		merged = telemetry.NewRegistry()
	}
	res, err := fleet.RunLoadInto(cfg, merged)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mutefleet:", err)
		os.Exit(1)
	}

	mode := "paced"
	if *throughput {
		mode = "throughput"
	}
	fmt.Printf("mutefleet: %s run, %d sessions, %d blocks (%d session-blocks) in %v\n",
		mode, res.Sessions, res.Blocks, res.SessionBlocks, res.Elapsed.Round(time.Millisecond))
	fmt.Printf("mutefleet: %d frames ingested, pool %d fresh / %d gets / %d puts\n",
		res.FramesIn, res.PoolNews, res.PoolGets, res.PoolPuts)
	fmt.Printf("mutefleet: %.0f ns per session-block → %.0f realtime sessions/core\n",
		res.SessionBlockNS, res.SessionsPerCore)
	if !*throughput {
		fmt.Printf("mutefleet: %d deadline misses (%.3f%% of session-blocks), p99 tick lateness %v\n",
			res.DeadlineMisses, 100*res.MissRate, time.Duration(res.P99LatenessNS).Round(time.Microsecond))
	}
	if merged != nil {
		fmt.Print(merged.Snapshot().Text())
	}
	if *jsonOut != "" {
		raw, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "mutefleet:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, append(raw, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "mutefleet:", err)
			os.Exit(1)
		}
		fmt.Printf("mutefleet: wrote %s\n", *jsonOut)
	}
}

// runChaos executes the chaos schedule and reports the audit; any
// invariant violation exits nonzero so CI smoke steps fail loudly.
func runChaos(cfg fleet.ChaosConfig, jsonOut string) {
	res, err := fleet.RunChaos(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mutefleet:", err)
		os.Exit(1)
	}
	fmt.Printf("mutefleet: chaos run, %d blocks, %d peers, peak pressure %s\n",
		res.Blocks, res.Peers, res.MaxPressure)
	fmt.Printf("mutefleet: %d churned, %d quarantined, %d shed, %d drained, %d adopted\n",
		res.Churned, res.Quarantined, res.Shed, res.Drained, res.Adopted)
	fmt.Printf("mutefleet: %d frames in, %d unknown-session, %d bad envelopes, %d refused opens\n",
		res.FramesIn, res.Unknown, res.BadEnvelope, res.Refused)
	if jsonOut != "" {
		raw, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "mutefleet:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(jsonOut, append(raw, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "mutefleet:", err)
			os.Exit(1)
		}
		fmt.Printf("mutefleet: wrote %s\n", jsonOut)
	}
	if !res.Ok() {
		for _, v := range res.Violations {
			fmt.Fprintln(os.Stderr, "mutefleet: INVARIANT VIOLATED:", v)
		}
		os.Exit(1)
	}
	fmt.Println("mutefleet: all lifecycle invariants held")
}
