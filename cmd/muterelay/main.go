// Command muterelay is the IoT-relay half of the live MUTE demo: it
// captures ambient sound (here: a synthetic generator standing in for the
// reference microphone), conditions it through the relay's analog chain,
// and streams timestamped audio frames over UDP to a muteear receiver —
// Figure 1's "IoT relay forwards sound over wireless", with an IP network
// playing the role of the 900 MHz FM link.
//
// Usage:
//
//	muteear  -listen 127.0.0.1:9950 &   # start the ear device first
//	muterelay -dest 127.0.0.1:9950 -sound speech -duration 10
//
// The -loss/-burst/-dup/-reorder/-jitter flags install a deterministic
// fault injector in front of the socket, so the ear device's FEC, jitter
// buffer, and loss-aware canceller can be exercised end to end without a
// bad network:
//
//	muterelay -dest 127.0.0.1:9950 -fec 4 -loss 0.1 -burst 4
//
// The -outage-at/-outage-dur flags script a relay reboot: every frame
// offered during the window is dropped, which a muteear running with
// -supervise answers by demoting to its local causal fallback and
// recovering after the link returns:
//
//	muterelay -dest 127.0.0.1:9950 -duration 10 -outage-at 4 -outage-dur 2
//
// The -skew-ppm/-skew-wander flags run the relay's sample clock off-rate:
// frame pacing follows a skewed oscillator (optionally with a seeded
// random-walk wander), so the timestamps — which count relay samples —
// drift against the ear's clock. A muteear running with -drift-correct
// estimates the skew from the arriving stream and resamples it away:
//
//	muterelay -dest 127.0.0.1:9950 -duration 30 -skew-ppm 150
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mute/internal/audio"
	"mute/internal/rf"
	"mute/pkg/mute"
)

func main() {
	var (
		dest     = flag.String("dest", "127.0.0.1:9950", "ear-device UDP address")
		sound    = flag.String("sound", "speech", "white | speech | music | hum")
		duration = flag.Float64("duration", 10, "seconds to stream")
		seed     = flag.Uint64("seed", 1, "generator seed")
		frame    = flag.Int("frame", 80, "samples per frame (80 = 10 ms at 8 kHz)")
		realtime = flag.Bool("realtime", true, "pace frames at the audio clock")
		fecGroup = flag.Int("fec", 0, "FEC group size (0 = off; e.g. 4 = one parity per 4 frames)")

		loss       = flag.Float64("loss", 0, "injected frame loss rate in [0, 1)")
		burst      = flag.Float64("burst", 0, "mean loss-burst length in frames (0/1 = i.i.d. loss)")
		dup        = flag.Float64("dup", 0, "frame duplication probability")
		reorder    = flag.Float64("reorder", 0, "frame reordering probability")
		jitterProb = flag.Float64("jitter-prob", 0, "per-frame delay-jitter probability")
		jitterMax  = flag.Int("jitter", 0, "max jitter delay in frame slots")
		impairSeed = flag.Uint64("impair-seed", 1, "fault-injector seed")
		outageAt   = flag.Float64("outage-at", 0, "schedule a relay reboot at this many seconds into the stream")
		outageDur  = flag.Float64("outage-dur", 0, "reboot blackout length in seconds (0 = no outage)")
		skewPPM    = flag.Float64("skew-ppm", 0, "oscillator skew in ppm (positive = relay clock fast); paces frames off-rate")
		skewWander = flag.Float64("skew-wander", 0, "oscillator wander: random-walk step sigma in ppm (seeded by -impair-seed)")
	)
	flag.Parse()

	const fs = 8000.0
	var gen mute.Generator
	switch *sound {
	case "white":
		gen = mute.WhiteNoise(*seed, fs, 0.5)
	case "speech":
		gen = mute.MaleSpeech(*seed, fs, 0.8)
	case "music":
		gen = mute.Music(*seed, fs, 0.5)
	case "hum":
		gen = mute.MachineHum(*seed, 120, fs, 0.5)
	default:
		fatal(fmt.Errorf("unknown sound %q", *sound))
	}

	relay, err := rf.NewRelay(rf.DefaultRelayParams(), rf.DefaultFMParams())
	if err != nil {
		fatal(err)
	}
	tx, err := mute.NewSender(*dest, *frame)
	if err != nil {
		fatal(err)
	}
	defer tx.Close()
	if *fecGroup > 0 {
		if err := tx.EnableFEC(*fecGroup); err != nil {
			fatal(err)
		}
	}
	var outages []mute.Outage
	if *outageDur > 0 {
		// Frame slots advance one per sent frame, so seconds map to slots
		// through the frame size.
		outages = []mute.Outage{{
			StartSlot:     uint64(*outageAt * fs / float64(*frame)),
			DurationSlots: uint64(*outageDur * fs / float64(*frame)),
		}}
	}
	var link *mute.LossyLink
	if *loss > 0 || *dup > 0 || *reorder > 0 || *jitterProb > 0 || len(outages) > 0 {
		link, err = mute.NewLossyLink(mute.LossParams{
			Seed:       *impairSeed,
			Loss:       *loss,
			MeanBurst:  *burst,
			Duplicate:  *dup,
			Reorder:    *reorder,
			JitterProb: *jitterProb,
			MaxJitter:  *jitterMax,
			Outages:    outages,
		})
		if err != nil {
			fatal(err)
		}
		tx.Impair(link)
	}

	var skew *mute.ClockSkew
	if *skewPPM != 0 || *skewWander != 0 {
		skew, err = mute.NewClockSkew(mute.SkewParams{
			Seed:      *impairSeed,
			PPM:       *skewPPM,
			WanderPPM: *skewWander,
		})
		if err != nil {
			fatal(err)
		}
		if !*realtime {
			fmt.Fprintln(os.Stderr, "muterelay: -skew-ppm/-skew-wander pace the frame clock and have no effect without -realtime")
		}
	}

	frames := int(*duration * fs / float64(*frame))
	interval := time.Duration(float64(*frame) / fs * float64(time.Second))
	fmt.Printf("muterelay: streaming %d frames of %d samples to %s\n", frames, *frame, *dest)
	start := time.Now()
	for i := 0; i < frames; i++ {
		block := audio.Render(gen, *frame)
		conditioned := relay.Capture(block)
		if err := tx.Send(conditioned); err != nil {
			fatal(err)
		}
		if *realtime {
			next := start.Add(time.Duration(i+1) * interval)
			if skew != nil {
				// The skewed oscillator finishes frame i when its clock has
				// produced (i+1)·frame samples — Pos() wall seconds in. A
				// fast relay (positive ppm) thus paces frames slightly
				// early, drifting its timestamps ahead of the ear's clock.
				for s := 0; s < *frame; s++ {
					skew.Advance()
				}
				next = start.Add(time.Duration(skew.Pos() / fs * float64(time.Second)))
			}
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
		}
	}
	if err := tx.Flush(); err != nil {
		fatal(err)
	}
	if link != nil {
		st := link.Stats()
		fmt.Printf("muterelay: link impairments: offered %d, dropped %d (%d to outages), duplicated %d, delayed %d\n",
			st.Offered, st.Dropped, st.OutageDropped, st.Duplicated, st.Delayed)
	}
	if skew != nil {
		fmt.Printf("muterelay: oscillator skew %.1f ppm at end (configured %g ppm, wander sigma %g)\n",
			skew.PPM(), *skewPPM, *skewWander)
	}
	fmt.Println("muterelay: done")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "muterelay:", err)
	os.Exit(1)
}
