package main

import (
	"mute/pkg/mute"
)

// earBudget itemizes where muteear's configured lookahead goes: the
// processing pipeline (ADC/DSP/DAC/speaker), the non-causal taps the
// canceller was granted, the drift resampler's interpolation future (when
// -drift-correct holds samples back for the cubic kernel), and whatever is
// left unused. The entries always sum to the configured lookahead exactly
// (the golden invariant checked by TestEarBudgetBalanced and, end to end,
// by the -trace-out JSONL), so the budget report is an accounting
// identity, not an estimate.
func earBudget(fs float64, lookahead int, pd mute.PipelineDelays, nTaps, driftGuard int) *mute.BudgetReport {
	b := mute.NewBudgetReport(fs, lookahead)
	b.Add("pipeline.adc", pd.ADC)
	b.Add("pipeline.dsp", pd.DSP)
	b.Add("pipeline.dac", pd.DAC)
	b.Add("pipeline.speaker", pd.Speaker)
	if driftGuard > 0 {
		b.Add("drift.resampler", driftGuard)
	}
	b.Add("lanc.noncausal_taps", nTaps)
	rest := lookahead - pd.ADC - pd.DSP - pd.DAC - pd.Speaker - driftGuard - nTaps
	if rest >= 0 {
		b.Add("unused", rest)
	} else {
		b.Add("overdrawn", rest)
	}
	return b
}

// traceDrift records the drift stage's per-block state: the filtered skew
// estimate and the resampler rate it steers, on the same sample clock as
// the rest of the trace (keys match the simulator's drift stage).
func traceDrift(tr *mute.Trace, t int64, est *mute.DriftEstimator, rate float64) {
	locked := 0.0
	if est.Locked() {
		locked = 1
	}
	tr.Record(t, mute.StageDrift, "estimator", map[string]float64{
		"est_ppm":  est.PPM(),
		"raw_ppm":  est.RawPPM(),
		"rate_ppm": (rate - 1) * 1e6,
		"locked":   locked,
	})
}

// traceBlock records one processing block's view of the live pipeline:
// stream-side jitter counters and lookahead-buffer occupancy, the
// canceller's adaptation state, and the residual energy. t is the sample
// clock (samples processed so far), so the JSONL lines up with the
// simulator's traces.
func traceBlock(tr *mute.Trace, t int64, rx *mute.Receiver, lanc *mute.Canceller, resPow float64, blockN int) {
	st := rx.Stats()
	tr.Record(t, mute.StageStream, "jitter", map[string]float64{
		"frames_received":   float64(st.FramesReceived),
		"frames_late":       float64(st.FramesLate),
		"frames_dropped":    float64(st.FramesDropped),
		"samples_concealed": float64(st.SamplesConcealed),
		"fec_recovered":     float64(rx.Recovered()),
	})
	tr.Record(t, mute.StageLookahead, "occupancy", map[string]float64{
		"frames": float64(rx.Buffered()),
	})
	gain, frozen, rampLeft := lanc.LossState()
	frozenV := 0.0
	if frozen {
		frozenV = 1
	}
	tr.Record(t, mute.StageLANC, "state", map[string]float64{
		"mu_eff":     lanc.EffectiveStep(),
		"tap_energy": lanc.TapEnergy(),
		"gain":       gain,
		"frozen":     frozenV,
		"ramp_left":  float64(rampLeft),
	})
	tr.Record(t, mute.StageResidual, "block", map[string]float64{
		"power": resPow / float64(blockN),
	})
}
