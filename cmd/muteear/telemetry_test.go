package main

import (
	"testing"

	"mute/pkg/mute"
)

// TestEarBudgetBalanced pins the accounting identity behind -trace-out: the
// per-stage lookahead-budget entries always sum to the configured lookahead
// (within the one-sample rounding slack Balanced allows), whatever split
// PlanBudget chose.
func TestEarBudgetBalanced(t *testing.T) {
	pd := mute.PipelineDelays{ADC: 1, DSP: 1, DAC: 1, Speaker: 1}
	for _, lookahead := range []int{5, 8, 40, 64, 70, 128, 500} {
		budget, err := mute.PlanBudget(lookahead, pd)
		if err != nil {
			t.Fatalf("PlanBudget(%d): %v", lookahead, err)
		}
		rep := earBudget(8000, lookahead, pd, budget.UsableTaps, 0)
		if !rep.Balanced() {
			t.Errorf("lookahead %d: budget unbalanced: spent %d", lookahead, rep.SpentSamples())
		}
		if got := rep.SpentSamples(); got != lookahead {
			t.Errorf("lookahead %d: entries sum to %d", lookahead, got)
		}

		// The same invariant must hold for what -trace-out serializes.
		tr := mute.NewTrace()
		rep.Record(tr)
		var sum float64
		for _, ev := range tr.Events() {
			if ev.Stage != mute.StageBudget {
				continue
			}
			sum += ev.Values["samples"]
		}
		if int(sum) != lookahead {
			t.Errorf("lookahead %d: traced budget events sum to %g", lookahead, sum)
		}
	}
}

// TestEarBudgetOverdrawn checks that an impossible grant is reported, not
// silently mis-summed: the overdrawn entry keeps the identity intact.
func TestEarBudgetOverdrawn(t *testing.T) {
	pd := mute.PipelineDelays{ADC: 1, DSP: 1, DAC: 1, Speaker: 1}
	rep := earBudget(8000, 10, pd, 32, 0) // 4 + 32 > 10
	if got := rep.SpentSamples(); got != 10 {
		t.Fatalf("overdrawn budget sums to %d, want 10", got)
	}
	found := false
	for _, e := range rep.Entries {
		if e.Stage == "overdrawn" && e.Samples < 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("no negative overdrawn entry in an over-granted budget")
	}
}

// TestEarBudgetDriftGuard checks the -drift-correct debit: the resampler's
// 2-sample interpolation future appears as its own entry and the identity
// still holds when taps were planned on the reduced grant.
func TestEarBudgetDriftGuard(t *testing.T) {
	pd := mute.PipelineDelays{ADC: 1, DSP: 1, DAC: 1, Speaker: 1}
	const lookahead, guard = 64, 2
	budget, err := mute.PlanBudget(lookahead-guard, pd)
	if err != nil {
		t.Fatal(err)
	}
	rep := earBudget(8000, lookahead, pd, budget.UsableTaps, guard)
	if got := rep.SpentSamples(); got != lookahead {
		t.Errorf("drift-guarded budget sums to %d, want %d", got, lookahead)
	}
	found := false
	for _, e := range rep.Entries {
		if e.Stage == "drift.resampler" && e.Samples == guard {
			found = true
		}
	}
	if !found {
		t.Error("no drift.resampler entry in a drift-corrected budget")
	}
}

// TestTraceDriftStage checks the drift recorder emits the estimator keys
// the simulator's drift stage uses, on the caller's sample clock.
func TestTraceDriftStage(t *testing.T) {
	est, err := mute.NewDriftEstimator(mute.DriftConfig{})
	if err != nil {
		t.Fatal(err)
	}
	tr := mute.NewTrace()
	traceDrift(tr, 160, est, 1+150e-6)
	evs := tr.Events()
	if len(evs) != 1 {
		t.Fatalf("%d events recorded, want 1", len(evs))
	}
	ev := evs[0]
	if ev.Stage != mute.StageDrift || ev.T != 160 {
		t.Errorf("event %s at t=%d, want %s at 160", ev.Stage, ev.T, mute.StageDrift)
	}
	for _, key := range []string{"est_ppm", "rate_ppm", "locked"} {
		if _, ok := ev.Values[key]; !ok {
			t.Errorf("drift event missing key %q", key)
		}
	}
	if got := ev.Values["rate_ppm"]; got < 149 || got > 151 {
		t.Errorf("rate_ppm = %g, want ~150", got)
	}
}

// TestTraceBlockStages runs the per-block recorder against a live (loopback,
// idle) receiver and checks every pipeline stage shows up in the trace.
func TestTraceBlockStages(t *testing.T) {
	rx, err := mute.NewReceiver("127.0.0.1:0", 8)
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	lanc, err := mute.NewCanceller(mute.CancellerConfig{
		NonCausalTaps: 4, CausalTaps: 8, Mu: 0.1, Normalized: true,
		SecondaryPath: []float64{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := mute.NewTrace()
	traceBlock(tr, 80, rx, lanc, 0.5, 80)
	want := map[string]bool{
		mute.StageStream:    false,
		mute.StageLookahead: false,
		mute.StageLANC:      false,
		mute.StageResidual:  false,
	}
	for _, ev := range tr.Events() {
		if ev.T != 80 {
			t.Errorf("event %s/%s at t=%d, want 80", ev.Stage, ev.Name, ev.T)
		}
		if _, ok := want[ev.Stage]; ok {
			want[ev.Stage] = true
		}
	}
	for stage, seen := range want {
		if !seen {
			t.Errorf("stage %s missing from block trace", stage)
		}
	}
}
