// Command muteear is the ear-device half of the live MUTE demo: it
// receives the relay's timestamped audio frames over UDP, reconstructs the
// reference stream through a jitter buffer, and runs LANC against a locally
// simulated acoustic leg — the received stream delayed by the configured
// acoustic lookahead and shaped by a multipath channel stands in for the
// sound wavefront that would reach the ear later than the radio did.
//
// Usage:
//
//	muteear -listen 127.0.0.1:9950 -duration 12 -lookahead-ms 8
//	muterelay -dest 127.0.0.1:9950 -sound speech -duration 10
//
// Loss-aware mode (-loss-aware, on by default) feeds the jitter buffer's
// concealment mask to the canceller: adaptation freezes while zero-filled
// gap samples sit in the gradient window and ramps back afterwards, so a
// lossy link (real, or injected with muterelay's -loss flags) degrades
// cancellation toward the passive floor instead of corrupting the filter.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mute/internal/dsp"
	"mute/pkg/mute"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:9950", "UDP listen address")
		duration    = flag.Float64("duration", 12, "seconds to run before reporting")
		lookaheadMs = flag.Float64("lookahead-ms", 8, "simulated acoustic lookahead")
		frame       = flag.Int("frame", 80, "samples per processing block")
		lossAware   = flag.Bool("loss-aware", true, "freeze adaptation over concealed (lost) samples")
	)
	flag.Parse()

	const fs = 8000.0
	rx, err := mute.NewReceiver(*listen, 256)
	if err != nil {
		fatal(err)
	}
	defer rx.Close()
	fmt.Printf("muteear: listening on %s\n", rx.Addr())

	lookahead := int(*lookaheadMs / 1000 * fs)
	if lookahead < 5 {
		lookahead = 5
	}
	// Simulated acoustic leg: the same waveform the radio forwarded,
	// arriving `lookahead` samples later through a small multipath channel.
	acousticDelay, err := dsp.NewDelayLine(lookahead)
	if err != nil {
		fatal(err)
	}
	earChannel := dsp.NewStreamConvolver([]float64{0.8, 0.25, 0.1, 0.05})
	secPath := []float64{0.85, 0.22, 0.06}
	secChannel := dsp.NewStreamConvolver(secPath)

	budget, err := mute.PlanBudget(lookahead, mute.PipelineDelays{ADC: 1, DSP: 1, DAC: 1, Speaker: 1})
	if err != nil {
		fatal(err)
	}
	lanc, err := mute.NewCanceller(mute.CancellerConfig{
		NonCausalTaps: budget.UsableTaps,
		CausalTaps:    64,
		Mu:            0.1,
		Normalized:    true,
		SecondaryPath: secPath,
		LossAware:     *lossAware,
	})
	if err != nil {
		fatal(err)
	}

	deadline := time.Now().Add(time.Duration(*duration * float64(time.Second)))
	block := make([]float64, *frame)
	mask := make([]bool, *frame)
	var noisePow, resPow float64
	var samples int
	e := 0.0
	for time.Now().Before(deadline) {
		// Drain pending datagrams, then process one block.
		for {
			got, err := rx.Poll(time.Millisecond)
			if err != nil {
				fmt.Fprintln(os.Stderr, "muteear: drop:", err)
			}
			if !got {
				break
			}
		}
		rx.PopMask(block, mask)
		for i, x := range block {
			lanc.Adapt(e)
			lanc.PushMasked(x, mask[i])
			a := lanc.AntiNoise()
			// The acoustic wavefront for this instant left the source
			// `lookahead` samples ago; reconstruct it from the delayed
			// reference and cancel it.
			d := earChannel.Process(acousticDelay.Process(x))
			e = d + secChannel.Process(a)
			noisePow += d * d
			resPow += e * e
			samples++
		}
		time.Sleep(time.Duration(float64(*frame) / fs * float64(time.Second)))
	}
	st := rx.Stats()
	fmt.Printf("muteear: %d samples, %d frames received (%d late, %d dropped), %d samples concealed, %d frames FEC-recovered\n",
		samples, st.FramesReceived, st.FramesLate, st.FramesDropped, st.SamplesConcealed, rx.Recovered())
	if noisePow > 0 && resPow > 0 {
		fmt.Printf("muteear: cancellation %.1f dB (lookahead %d samples, N=%d non-causal taps)\n",
			dsp.DB(resPow/noisePow), lookahead, budget.UsableTaps)
	} else {
		fmt.Println("muteear: no audio received")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "muteear:", err)
	os.Exit(1)
}
