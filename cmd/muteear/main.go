// Command muteear is the ear-device half of the live MUTE demo: it
// receives the relay's timestamped audio frames over UDP, reconstructs the
// reference stream through a jitter buffer, and runs LANC against a locally
// simulated acoustic leg — the received stream delayed by the configured
// acoustic lookahead and shaped by a multipath channel stands in for the
// sound wavefront that would reach the ear later than the radio did.
//
// The cancellation pipeline itself is not wired here: muteear binds its
// live sources (the UDP receiver, the drift-corrected resampler, the
// derived acoustic leg) to the same pipeline graph the simulator
// instantiates (mute.BuildPipeline), so the live loop and the simulated
// one cannot diverge stage by stage.
//
// Usage:
//
//	muteear -listen 127.0.0.1:9950 -duration 12 -lookahead-ms 8
//	muterelay -dest 127.0.0.1:9950 -sound speech -duration 10
//
// Loss-aware mode (-loss-aware, on by default) feeds the jitter buffer's
// concealment mask to the canceller: adaptation freezes while zero-filled
// gap samples sit in the gradient window and ramps back afterwards, so a
// lossy link (real, or injected with muterelay's -loss flags) degrades
// cancellation toward the passive floor instead of corrupting the filter.
//
// Supervised mode (-supervise) adds the relay-outage degradation ladder:
// a link-health estimator demotes the canceller to a shrunken lookahead
// window, then to a local causal fallback (warm-started from LANC's
// causal taps), then to passthrough as the link dies — and probes its way
// back up once frames flow again. Pair with muterelay's
// -outage-at/-outage-dur flags to watch a scripted relay reboot.
//
// Drift-corrected mode (-drift-correct) slaves the received reference to
// the local sample clock: a drift estimator fits the relay-vs-ear skew
// from frame timestamps against wall-clock arrivals, and a continuous-rate
// resampler between the jitter buffer and the canceller consumes input at
// 1 + ppm·1e-6 samples per output sample. Pair with muterelay's -skew-ppm
// flag to watch a detuned relay oscillator get cancelled anyway; with
// -supervise, a skew beyond the supervisor's drift thresholds also walks
// the degradation ladder.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mute/internal/dsp"
	"mute/pkg/mute"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:9950", "UDP listen address")
		duration    = flag.Float64("duration", 12, "seconds to run before reporting")
		lookaheadMs = flag.Float64("lookahead-ms", 8, "simulated acoustic lookahead")
		frame       = flag.Int("frame", 80, "samples per processing block")
		lossAware   = flag.Bool("loss-aware", true, "freeze adaptation over concealed (lost) samples")
		driftOn     = flag.Bool("drift-correct", false, "estimate relay clock skew and resample the reference to the local clock")
		supervise   = flag.Bool("supervise", false, "run the degradation ladder: demote to a local causal fallback (and recover) as relay link health changes")
		traceOut    = flag.String("trace-out", "", "write a per-stage JSONL trace to this file")
		debugAddr   = flag.String("debug-addr", "", "serve expvar (/debug/vars) and pprof on this address")
	)
	flag.Parse()

	const fs = 8000.0
	const fsInt = 8000
	rx, err := mute.NewReceiver(*listen, 256)
	if err != nil {
		fatal(err)
	}
	defer rx.Close()
	fmt.Printf("muteear: listening on %s\n", rx.Addr())

	// The drift resampler's cubic kernel reads up to 2 samples of future,
	// a real debit against the acoustic lookahead (see OBSERVABILITY.md).
	driftGuard := 0
	if *driftOn {
		driftGuard = 2
	}
	lookahead := int(*lookaheadMs / 1000 * fs)
	if lookahead < 5+driftGuard {
		lookahead = 5 + driftGuard
	}
	// Simulated acoustic leg: the same waveform the radio forwarded,
	// arriving `lookahead` samples later through a small multipath channel.
	acousticDelay, err := dsp.NewDelayLine(lookahead)
	if err != nil {
		fatal(err)
	}
	earChannel := dsp.NewStreamConvolver([]float64{0.8, 0.25, 0.1, 0.05})
	secPath := []float64{0.85, 0.22, 0.06}

	var tr *mute.Trace
	if *traceOut != "" {
		tr = mute.NewTrace()
	}
	reg := mute.NewTelemetry()
	if *debugAddr != "" {
		mute.PublishTelemetry("mute", reg)
		// Bind before the audio loop starts: a bad address or occupied
		// port must fail the run, not surface minutes later from a
		// goroutine. The dedicated mux keeps handlers other packages
		// register off the debug port.
		bound, err := mute.ServeDebug(*debugAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("muteear: expvar/pprof on http://%s/debug/vars\n", bound)
	}

	start := time.Now()
	var est *mute.DriftEstimator
	ref := mute.SampleSource(&mute.ReceiverSource{Buf: rx})
	var driftCtl mute.DriftControl
	var rs *mute.VariRateResampler
	if *driftOn {
		// Live arrivals carry ~0.5 ms of scheduler jitter, so the slope
		// needs a much longer baseline than the simulator's exact-clock
		// default: 512 frames pairs observations ~2.5 s apart, putting the
		// per-pair noise floor near 100 ppm before the median and loop
		// filter grind it down further.
		est, err = mute.NewDriftEstimator(mute.DriftConfig{WindowFrames: 512, SlopeGain: 0.02})
		if err != nil {
			fatal(err)
		}
		rs = mute.NewVariRateResampler()
		ref = &mute.DriftSource{Inner: ref, Est: est, RS: rs}
		driftCtl = &mute.LiveDrift{
			Est:   est,
			Every: int64(*frame),
			Now:   func() float64 { return time.Since(start).Seconds() * fs },
		}
		// Every direct data frame contributes one (relay timestamp,
		// ear-clock arrival) pair; the wall clock in sample units is the
		// ear's oscillator as far as the slope fit is concerned.
		rx.SetFrameObserver(func(ts uint64) {
			est.Observe(ts, time.Since(start).Seconds()*fs)
		})
	}

	pl, err := mute.BuildPipeline(mute.PipelineConfig{
		SampleRate: fs,
		Lookahead:  lookahead,
		DriftGuard: driftGuard,
		Pipeline:   mute.PipelineDelays{ADC: 1, DSP: 1, DAC: 1, Speaker: 1},
		Canceller: mute.PipelineCancellerParams{
			CausalTaps:    64,
			Mu:            0.1,
			SecondaryPath: secPath,
			LossAware:     *lossAware,
		},
		Supervise:         *supervise,
		FallbackSecondary: secPath,
		Reference:         ref,
		Ambient:           &mute.DerivedAmbient{Delay: acousticDelay, Channel: earChannel},
		Drift:             driftCtl,
		SecondaryIR:       secPath,
		Trace:             tr,
		TraceBlock:        *frame,
		LiveHooks:         true,
		Telemetry:         reg,
	})
	if err != nil {
		fatal(err)
	}
	// The budget report shows where the configured lookahead goes (its
	// entries sum to `lookahead` by construction, and land in the trace as
	// budget-stage events).
	fmt.Print(pl.Spend.Text())

	deadline := start.Add(time.Duration(*duration * float64(time.Second)))
	var blocks int64
	for time.Now().Before(deadline) {
		// Receive until the next block boundary: Poll blocks until a
		// datagram lands or the boundary passes, so the poll window itself
		// paces the loop at the audio clock AND every frame is observed at
		// its true arrival instant — the x-axis of the drift estimator's
		// slope fit. (Draining once per block and sleeping would batch
		// arrivals at the ear's loop period and bias the fit.) The boundary
		// is computed in integer arithmetic from the block count — a
		// truncated per-block interval would accumulate into an artificial
		// skew the estimator then pins on the relay.
		blocks++
		next := mute.BlockDeadline(start, blocks, int64(*frame), fsInt)
		for {
			d := time.Until(next)
			if d <= 0 {
				break
			}
			if _, err := rx.Poll(d); err != nil {
				// Poll returns nil on timeouts and corrupt datagrams (those
				// are counted in the jitter stats); an error here is a real
				// socket failure.
				fmt.Fprintln(os.Stderr, "muteear: receive error:", err)
			}
		}
		if _, err := pl.ProcessBlock(*frame); err != nil {
			fatal(err)
		}
	}
	st := rx.Stats()
	st.Publish(reg, "stream.")
	if *traceOut != "" {
		if err := tr.WriteFile(*traceOut); err != nil {
			fatal(err)
		}
		fmt.Printf("muteear: wrote %d trace events to %s\n", tr.Len(), *traceOut)
	}
	samples := pl.Samples()
	fmt.Printf("muteear: %d samples, %d frames received (%d late, %d dropped, %d corrupt), %d samples concealed, %d frames FEC-recovered\n",
		samples, st.FramesReceived, st.FramesLate, st.FramesDropped, st.FramesCorrupt, st.SamplesConcealed, rx.Recovered())
	if est != nil {
		fmt.Printf("muteear: drift estimate %+.1f ppm from %d frames (locked=%v, resampler rate %.6f)\n",
			est.PPM(), est.Observations(), est.Locked(), rs.Rate())
	}
	if pl.Sup != nil {
		rep := pl.Sup.Report()
		fmt.Printf("muteear: supervisor ended in %s after %d transitions (%d probes, %d warm starts)\n",
			rep.FinalState, len(rep.Transitions), rep.Probes, rep.WarmStarts)
		for rung := mute.StateLANC; rung <= mute.StatePassthrough; rung++ {
			if rep.TimeInState[rung] > 0 {
				fmt.Printf("muteear:   %-11s %6.1f%%\n", rung.String(),
					100*float64(rep.TimeInState[rung])/float64(samples))
			}
		}
	}
	noisePow, resPow := pl.Meters()
	if noisePow > 0 && resPow > 0 {
		fmt.Printf("muteear: cancellation %.1f dB (lookahead %d samples, N=%d non-causal taps)\n",
			dsp.DB(resPow/noisePow), lookahead, pl.NonCausalTaps)
	} else {
		fmt.Println("muteear: no audio received")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "muteear:", err)
	os.Exit(1)
}
