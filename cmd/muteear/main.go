// Command muteear is the ear-device half of the live MUTE demo: it
// receives the relay's timestamped audio frames over UDP, reconstructs the
// reference stream through a jitter buffer, and runs LANC against a locally
// simulated acoustic leg — the received stream delayed by the configured
// acoustic lookahead and shaped by a multipath channel stands in for the
// sound wavefront that would reach the ear later than the radio did.
//
// Usage:
//
//	muteear -listen 127.0.0.1:9950 -duration 12 -lookahead-ms 8
//	muterelay -dest 127.0.0.1:9950 -sound speech -duration 10
//
// Loss-aware mode (-loss-aware, on by default) feeds the jitter buffer's
// concealment mask to the canceller: adaptation freezes while zero-filled
// gap samples sit in the gradient window and ramps back afterwards, so a
// lossy link (real, or injected with muterelay's -loss flags) degrades
// cancellation toward the passive floor instead of corrupting the filter.
//
// Supervised mode (-supervise) adds the relay-outage degradation ladder:
// a link-health estimator demotes the canceller to a shrunken lookahead
// window, then to a local causal fallback (warm-started from LANC's
// causal taps), then to passthrough as the link dies — and probes its way
// back up once frames flow again. Pair with muterelay's
// -outage-at/-outage-dur flags to watch a scripted relay reboot.
//
// Drift-corrected mode (-drift-correct) slaves the received reference to
// the local sample clock: a drift estimator fits the relay-vs-ear skew
// from frame timestamps against wall-clock arrivals, and a continuous-rate
// resampler between the jitter buffer and the canceller consumes input at
// 1 + ppm·1e-6 samples per output sample. Pair with muterelay's -skew-ppm
// flag to watch a detuned relay oscillator get cancelled anyway; with
// -supervise, a skew beyond the supervisor's drift thresholds also walks
// the degradation ladder.
package main

import (
	_ "expvar" // registers /debug/vars on the default mux
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"time"

	"mute/internal/dsp"
	"mute/pkg/mute"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:9950", "UDP listen address")
		duration    = flag.Float64("duration", 12, "seconds to run before reporting")
		lookaheadMs = flag.Float64("lookahead-ms", 8, "simulated acoustic lookahead")
		frame       = flag.Int("frame", 80, "samples per processing block")
		lossAware   = flag.Bool("loss-aware", true, "freeze adaptation over concealed (lost) samples")
		driftOn     = flag.Bool("drift-correct", false, "estimate relay clock skew and resample the reference to the local clock")
		supervise   = flag.Bool("supervise", false, "run the degradation ladder: demote to a local causal fallback (and recover) as relay link health changes")
		traceOut    = flag.String("trace-out", "", "write a per-stage JSONL trace to this file")
		debugAddr   = flag.String("debug-addr", "", "serve expvar (/debug/vars) and pprof on this address")
	)
	flag.Parse()

	const fs = 8000.0
	rx, err := mute.NewReceiver(*listen, 256)
	if err != nil {
		fatal(err)
	}
	defer rx.Close()
	fmt.Printf("muteear: listening on %s\n", rx.Addr())

	// The drift resampler's cubic kernel reads up to 2 samples of future,
	// a real debit against the acoustic lookahead (see OBSERVABILITY.md).
	driftGuard := 0
	if *driftOn {
		driftGuard = 2
	}
	lookahead := int(*lookaheadMs / 1000 * fs)
	if lookahead < 5+driftGuard {
		lookahead = 5 + driftGuard
	}
	// Simulated acoustic leg: the same waveform the radio forwarded,
	// arriving `lookahead` samples later through a small multipath channel.
	acousticDelay, err := dsp.NewDelayLine(lookahead)
	if err != nil {
		fatal(err)
	}
	earChannel := dsp.NewStreamConvolver([]float64{0.8, 0.25, 0.1, 0.05})
	secPath := []float64{0.85, 0.22, 0.06}
	secChannel := dsp.NewStreamConvolver(secPath)

	pd := mute.PipelineDelays{ADC: 1, DSP: 1, DAC: 1, Speaker: 1}
	budget, err := mute.PlanBudget(lookahead-driftGuard, pd)
	if err != nil {
		fatal(err)
	}
	lanc, err := mute.NewCanceller(mute.CancellerConfig{
		NonCausalTaps: budget.UsableTaps,
		CausalTaps:    64,
		Mu:            0.1,
		Normalized:    true,
		SecondaryPath: secPath,
		LossAware:     *lossAware,
	})
	if err != nil {
		fatal(err)
	}
	// Observability: the budget report shows where the configured lookahead
	// goes (its entries sum to `lookahead` by construction); the optional
	// trace records per-block pipeline state on the sample clock; the
	// registry backs the expvar endpoint.
	report := earBudget(fs, lookahead, pd, budget.UsableTaps, driftGuard)
	fmt.Print(report.Text())
	var tr *mute.Trace
	if *traceOut != "" {
		tr = mute.NewTrace()
		report.Record(tr)
	}
	var sup *mute.Supervisor
	if *supervise {
		fb, err := mute.NewLocalCanceller(mute.DefaultLocalCancellerConfig(fs, secPath))
		if err != nil {
			fatal(err)
		}
		scfg := mute.DefaultSupervisorConfig()
		scfg.Trace = tr // nil is fine: transitions then go unrecorded
		sup, err = mute.NewSupervisor(scfg, lanc, fb)
		if err != nil {
			fatal(err)
		}
	}
	var est *mute.DriftEstimator
	var rs *mute.VariRateResampler
	if *driftOn {
		// Live arrivals carry ~0.5 ms of scheduler jitter, so the slope
		// needs a much longer baseline than the simulator's exact-clock
		// default: 512 frames pairs observations ~2.5 s apart, putting the
		// per-pair noise floor near 100 ppm before the median and loop
		// filter grind it down further.
		est, err = mute.NewDriftEstimator(mute.DriftConfig{WindowFrames: 512, SlopeGain: 0.02})
		if err != nil {
			fatal(err)
		}
		rs = mute.NewVariRateResampler()
	}
	reg := mute.NewTelemetry()
	if *debugAddr != "" {
		mute.PublishTelemetry("mute", reg)
		go func() {
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "muteear: debug endpoint:", err)
			}
		}()
		fmt.Printf("muteear: expvar/pprof on http://%s/debug/vars\n", *debugAddr)
	}

	start := time.Now()
	if est != nil {
		// Every direct data frame contributes one (relay timestamp,
		// ear-clock arrival) pair; the wall clock in sample units is the
		// ear's oscillator as far as the slope fit is concerned.
		rx.SetFrameObserver(func(ts uint64) {
			est.Observe(ts, time.Since(start).Seconds()*fs)
		})
	}
	deadline := start.Add(time.Duration(*duration * float64(time.Second)))
	interval := time.Duration(float64(*frame) / fs * float64(time.Second))
	block := make([]float64, *frame)
	mask := make([]bool, *frame)
	var noisePow, resPow float64
	var samples int
	e := 0.0
	next := start
	for time.Now().Before(deadline) {
		// Receive until the next block boundary: Poll blocks until a
		// datagram lands or the boundary passes, so the poll window itself
		// paces the loop at the audio clock AND every frame is observed at
		// its true arrival instant — the x-axis of the drift estimator's
		// slope fit. (Draining once per block and sleeping would batch
		// arrivals at the ear's loop period and bias the fit.)
		next = next.Add(interval)
		for {
			d := time.Until(next)
			if d <= 0 {
				break
			}
			if _, err := rx.Poll(d); err != nil {
				fmt.Fprintln(os.Stderr, "muteear: drop:", err)
			}
		}
		if rs != nil {
			// Slave the reference to the local clock: consume jitter-buffer
			// output at the estimated relay rate, one output sample at a
			// time. Until the estimator locks the rate stays exactly 1 and
			// the resampler is a bit-exact passthrough.
			if est.Locked() {
				rs.SetRate(1 + est.PPM()*1e-6)
			}
			var v [1]float64
			var m [1]bool
			for i := range block {
				for !rs.Ready() {
					rx.PopMask(v[:], m[:])
					rs.Push(v[0], m[0])
				}
				block[i], mask[i], _ = rs.Pop()
			}
			if sup != nil {
				sup.ObserveDrift(est.PPM(), est.Estimable(time.Since(start).Seconds()*fs))
			}
		} else {
			rx.PopMask(block, mask)
		}
		var blockRes float64
		for i, x := range block {
			// The acoustic wavefront for this instant left the source
			// `lookahead` samples ago; reconstruct it from the delayed
			// reference and cancel it.
			d := earChannel.Process(acousticDelay.Process(x))
			var a float64
			if sup != nil {
				a = sup.Step(x, d, e, mask[i])
			} else {
				lanc.Adapt(e)
				lanc.PushMasked(x, mask[i])
				a = lanc.AntiNoise()
			}
			e = d + secChannel.Process(a)
			noisePow += d * d
			resPow += e * e
			blockRes += e * e
			samples++
		}
		if tr != nil {
			traceBlock(tr, int64(samples), rx, lanc, blockRes, *frame)
			if est != nil {
				traceDrift(tr, int64(samples), est, rs.Rate())
			}
			if sup != nil {
				sup.TraceState(tr, int64(samples))
			}
		}
		reg.Counter("ear.samples").Add(int64(*frame))
		reg.Gauge("ear.tap_energy").Set(lanc.TapEnergy())
		reg.Gauge("ear.buffered_frames").Set(float64(rx.Buffered()))
		if est != nil {
			reg.Gauge("drift.est_ppm").Set(est.PPM())
			reg.Gauge("drift.rate_ppm").Set((rs.Rate() - 1) * 1e6)
		}
	}
	st := rx.Stats()
	st.Publish(reg, "stream.")
	if *traceOut != "" {
		if err := tr.WriteFile(*traceOut); err != nil {
			fatal(err)
		}
		fmt.Printf("muteear: wrote %d trace events to %s\n", tr.Len(), *traceOut)
	}
	fmt.Printf("muteear: %d samples, %d frames received (%d late, %d dropped), %d samples concealed, %d frames FEC-recovered\n",
		samples, st.FramesReceived, st.FramesLate, st.FramesDropped, st.SamplesConcealed, rx.Recovered())
	if est != nil {
		fmt.Printf("muteear: drift estimate %+.1f ppm from %d frames (locked=%v, resampler rate %.6f)\n",
			est.PPM(), est.Observations(), est.Locked(), rs.Rate())
	}
	if sup != nil {
		rep := sup.Report()
		fmt.Printf("muteear: supervisor ended in %s after %d transitions (%d probes, %d warm starts)\n",
			rep.FinalState, len(rep.Transitions), rep.Probes, rep.WarmStarts)
		for rung := mute.StateLANC; rung <= mute.StatePassthrough; rung++ {
			if rep.TimeInState[rung] > 0 {
				fmt.Printf("muteear:   %-11s %6.1f%%\n", rung.String(),
					100*float64(rep.TimeInState[rung])/float64(samples))
			}
		}
	}
	if noisePow > 0 && resPow > 0 {
		fmt.Printf("muteear: cancellation %.1f dB (lookahead %d samples, N=%d non-causal taps)\n",
			dsp.DB(resPow/noisePow), lookahead, budget.UsableTaps)
	} else {
		fmt.Println("muteear: no audio received")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "muteear:", err)
	os.Exit(1)
}
