// Command muteear is the ear-device half of the live MUTE demo: it
// receives the relay's timestamped audio frames over UDP, reconstructs the
// reference stream through a jitter buffer, and runs LANC against a locally
// simulated acoustic leg — the received stream delayed by the configured
// acoustic lookahead and shaped by a multipath channel stands in for the
// sound wavefront that would reach the ear later than the radio did.
//
// Usage:
//
//	muteear -listen 127.0.0.1:9950 -duration 12 -lookahead-ms 8
//	muterelay -dest 127.0.0.1:9950 -sound speech -duration 10
//
// Loss-aware mode (-loss-aware, on by default) feeds the jitter buffer's
// concealment mask to the canceller: adaptation freezes while zero-filled
// gap samples sit in the gradient window and ramps back afterwards, so a
// lossy link (real, or injected with muterelay's -loss flags) degrades
// cancellation toward the passive floor instead of corrupting the filter.
//
// Supervised mode (-supervise) adds the relay-outage degradation ladder:
// a link-health estimator demotes the canceller to a shrunken lookahead
// window, then to a local causal fallback (warm-started from LANC's
// causal taps), then to passthrough as the link dies — and probes its way
// back up once frames flow again. Pair with muterelay's
// -outage-at/-outage-dur flags to watch a scripted relay reboot.
package main

import (
	_ "expvar" // registers /debug/vars on the default mux
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"time"

	"mute/internal/dsp"
	"mute/pkg/mute"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:9950", "UDP listen address")
		duration    = flag.Float64("duration", 12, "seconds to run before reporting")
		lookaheadMs = flag.Float64("lookahead-ms", 8, "simulated acoustic lookahead")
		frame       = flag.Int("frame", 80, "samples per processing block")
		lossAware   = flag.Bool("loss-aware", true, "freeze adaptation over concealed (lost) samples")
		supervise   = flag.Bool("supervise", false, "run the degradation ladder: demote to a local causal fallback (and recover) as relay link health changes")
		traceOut    = flag.String("trace-out", "", "write a per-stage JSONL trace to this file")
		debugAddr   = flag.String("debug-addr", "", "serve expvar (/debug/vars) and pprof on this address")
	)
	flag.Parse()

	const fs = 8000.0
	rx, err := mute.NewReceiver(*listen, 256)
	if err != nil {
		fatal(err)
	}
	defer rx.Close()
	fmt.Printf("muteear: listening on %s\n", rx.Addr())

	lookahead := int(*lookaheadMs / 1000 * fs)
	if lookahead < 5 {
		lookahead = 5
	}
	// Simulated acoustic leg: the same waveform the radio forwarded,
	// arriving `lookahead` samples later through a small multipath channel.
	acousticDelay, err := dsp.NewDelayLine(lookahead)
	if err != nil {
		fatal(err)
	}
	earChannel := dsp.NewStreamConvolver([]float64{0.8, 0.25, 0.1, 0.05})
	secPath := []float64{0.85, 0.22, 0.06}
	secChannel := dsp.NewStreamConvolver(secPath)

	budget, err := mute.PlanBudget(lookahead, mute.PipelineDelays{ADC: 1, DSP: 1, DAC: 1, Speaker: 1})
	if err != nil {
		fatal(err)
	}
	lanc, err := mute.NewCanceller(mute.CancellerConfig{
		NonCausalTaps: budget.UsableTaps,
		CausalTaps:    64,
		Mu:            0.1,
		Normalized:    true,
		SecondaryPath: secPath,
		LossAware:     *lossAware,
	})
	if err != nil {
		fatal(err)
	}
	// Observability: the budget report shows where the configured lookahead
	// goes (its entries sum to `lookahead` by construction); the optional
	// trace records per-block pipeline state on the sample clock; the
	// registry backs the expvar endpoint.
	pd := mute.PipelineDelays{ADC: 1, DSP: 1, DAC: 1, Speaker: 1}
	report := earBudget(fs, lookahead, pd, budget.UsableTaps)
	fmt.Print(report.Text())
	var tr *mute.Trace
	if *traceOut != "" {
		tr = mute.NewTrace()
		report.Record(tr)
	}
	var sup *mute.Supervisor
	if *supervise {
		fb, err := mute.NewLocalCanceller(mute.DefaultLocalCancellerConfig(fs, secPath))
		if err != nil {
			fatal(err)
		}
		scfg := mute.DefaultSupervisorConfig()
		scfg.Trace = tr // nil is fine: transitions then go unrecorded
		sup, err = mute.NewSupervisor(scfg, lanc, fb)
		if err != nil {
			fatal(err)
		}
	}
	reg := mute.NewTelemetry()
	if *debugAddr != "" {
		mute.PublishTelemetry("mute", reg)
		go func() {
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "muteear: debug endpoint:", err)
			}
		}()
		fmt.Printf("muteear: expvar/pprof on http://%s/debug/vars\n", *debugAddr)
	}

	deadline := time.Now().Add(time.Duration(*duration * float64(time.Second)))
	block := make([]float64, *frame)
	mask := make([]bool, *frame)
	var noisePow, resPow float64
	var samples int
	e := 0.0
	for time.Now().Before(deadline) {
		// Drain pending datagrams, then process one block.
		for {
			got, err := rx.Poll(time.Millisecond)
			if err != nil {
				fmt.Fprintln(os.Stderr, "muteear: drop:", err)
			}
			if !got {
				break
			}
		}
		rx.PopMask(block, mask)
		var blockRes float64
		for i, x := range block {
			// The acoustic wavefront for this instant left the source
			// `lookahead` samples ago; reconstruct it from the delayed
			// reference and cancel it.
			d := earChannel.Process(acousticDelay.Process(x))
			var a float64
			if sup != nil {
				a = sup.Step(x, d, e, mask[i])
			} else {
				lanc.Adapt(e)
				lanc.PushMasked(x, mask[i])
				a = lanc.AntiNoise()
			}
			e = d + secChannel.Process(a)
			noisePow += d * d
			resPow += e * e
			blockRes += e * e
			samples++
		}
		if tr != nil {
			traceBlock(tr, int64(samples), rx, lanc, blockRes, *frame)
			if sup != nil {
				sup.TraceState(tr, int64(samples))
			}
		}
		reg.Counter("ear.samples").Add(int64(*frame))
		reg.Gauge("ear.tap_energy").Set(lanc.TapEnergy())
		reg.Gauge("ear.buffered_frames").Set(float64(rx.Buffered()))
		time.Sleep(time.Duration(float64(*frame) / fs * float64(time.Second)))
	}
	st := rx.Stats()
	st.Publish(reg, "stream.")
	if *traceOut != "" {
		if err := tr.WriteFile(*traceOut); err != nil {
			fatal(err)
		}
		fmt.Printf("muteear: wrote %d trace events to %s\n", tr.Len(), *traceOut)
	}
	fmt.Printf("muteear: %d samples, %d frames received (%d late, %d dropped), %d samples concealed, %d frames FEC-recovered\n",
		samples, st.FramesReceived, st.FramesLate, st.FramesDropped, st.SamplesConcealed, rx.Recovered())
	if sup != nil {
		rep := sup.Report()
		fmt.Printf("muteear: supervisor ended in %s after %d transitions (%d probes, %d warm starts)\n",
			rep.FinalState, len(rep.Transitions), rep.Probes, rep.WarmStarts)
		for rung := mute.StateLANC; rung <= mute.StatePassthrough; rung++ {
			if rep.TimeInState[rung] > 0 {
				fmt.Printf("muteear:   %-11s %6.1f%%\n", rung.String(),
					100*float64(rep.TimeInState[rung])/float64(samples))
			}
		}
	}
	if noisePow > 0 && resPow > 0 {
		fmt.Printf("muteear: cancellation %.1f dB (lookahead %d samples, N=%d non-causal taps)\n",
			dsp.DB(resPow/noisePow), lookahead, budget.UsableTaps)
	} else {
		fmt.Println("muteear: no audio received")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "muteear:", err)
	os.Exit(1)
}
