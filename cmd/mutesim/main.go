// Command mutesim runs one end-to-end MUTE scenario and prints a
// cancellation report, optionally writing the open-ear and cancelled
// recordings as WAV files for listening.
//
// Usage:
//
//	mutesim -scheme mute-hollow -sound white -duration 8
//	mutesim -scheme mute-passive -sound music -wav out/   # writes WAVs
//	mutesim -scheme bose-overall -sound speech -fm        # full FM chain
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"mute/internal/scenario"
	"mute/pkg/mute"
)

func main() {
	var (
		scheme    = flag.String("scheme", "mute-hollow", "mute-hollow | mute-passive | bose-active | bose-overall | passive-only")
		sound     = flag.String("sound", "white", "white | speech | female | music | construction | hum | babble")
		input     = flag.String("input", "", "WAV file to use as the noise source (overrides -sound; resampled to 8 kHz)")
		sceneFile = flag.String("scene", "", "JSON scene description (overrides -sound/-input and the default room)")
		duration  = flag.Float64("duration", 8, "seconds of simulated audio")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		useFM     = flag.Bool("fm", false, "route reference audio through the full FM chain")
		wavDir    = flag.String("wav", "", "directory to write open.wav / canceled.wav (empty = skip)")
	)
	flag.Parse()

	schemes := map[string]mute.Scheme{
		"mute-hollow":  mute.MUTEHollow,
		"mute-passive": mute.MUTEPassive,
		"bose-active":  mute.BoseActive,
		"bose-overall": mute.BoseOverall,
		"passive-only": mute.PassiveOnly,
	}
	sch, ok := schemes[*scheme]
	if !ok {
		fatal(fmt.Errorf("unknown scheme %q", *scheme))
	}
	const fs = 8000.0
	if *sceneFile != "" {
		spec, err := scenario.LoadFile(*sceneFile)
		if err != nil {
			fatal(err)
		}
		scene, err := spec.Build()
		if err != nil {
			fatal(err)
		}
		runScene(scene, sch, *duration, *seed, *useFM, *wavDir)
		return
	}
	var gen mute.Generator
	if *input != "" {
		data, rate, err := mute.LoadWAV(*input)
		if err != nil {
			fatal(err)
		}
		gen, err = mute.FromSamples(data, float64(rate), fs, true)
		if err != nil {
			fatal(err)
		}
	} else {
		gen = pickSound(*sound, *seed, fs)
		if gen == nil {
			fatal(fmt.Errorf("unknown sound %q", *sound))
		}
	}
	runScene(mute.DefaultScene(gen), sch, *duration, *seed, *useFM, *wavDir)
}

// runScene simulates the scheme on a scene and prints the report.
func runScene(scene mute.Scene, sch mute.Scheme, duration float64, seed uint64, useFM bool, wavDir string) {
	p := mute.DefaultParams(scene)
	p.Duration = duration
	p.Seed = seed
	p.UseFMLink = useFM
	r, err := mute.Run(p, sch)
	if err != nil {
		fatal(err)
	}
	rep, err := mute.Summarize(r)
	if err != nil {
		fatal(err)
	}
	fmt.Println(rep)
	freqs, dB, err := mute.Spectrum(r)
	if err != nil {
		fatal(err)
	}
	fmt.Println("cancellation spectrum (Hz → dB):")
	step := len(freqs) / 16
	if step == 0 {
		step = 1
	}
	for i := step; i < len(freqs); i += step {
		fmt.Printf("  %7.0f  %7.2f\n", freqs[i], dB[i])
	}
	if wavDir != "" {
		if err := os.MkdirAll(wavDir, 0o755); err != nil {
			fatal(err)
		}
		rate := int(scene.SampleRate)
		if err := mute.SaveWAV(filepath.Join(wavDir, "open.wav"), r.Open, rate); err != nil {
			fatal(err)
		}
		if err := mute.SaveWAV(filepath.Join(wavDir, "canceled.wav"), r.On, rate); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s/open.wav and %s/canceled.wav\n", wavDir, wavDir)
	}
}

func pickSound(name string, seed uint64, fs float64) mute.Generator {
	switch name {
	case "white":
		return mute.WhiteNoise(seed, fs, 0.5)
	case "speech":
		return mute.MaleSpeech(seed, fs, 0.8)
	case "female":
		return mute.FemaleSpeech(seed, fs, 0.8)
	case "music":
		return mute.Music(seed, fs, 0.5)
	case "construction":
		return mute.Construction(seed, fs, 0.5)
	case "hum":
		return mute.MachineHum(seed, 120, fs, 0.5)
	case "babble":
		return mute.Babble(seed, 3, fs, 0.8)
	default:
		return nil
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mutesim:", err)
	os.Exit(1)
}
