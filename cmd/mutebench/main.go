// Command mutebench regenerates the tables and figures of the MUTE paper's
// evaluation (Section 5) on the simulator and prints them as ASCII tables
// or CSV.
//
// Usage:
//
//	mutebench -fig fig12            # one experiment
//	mutebench -fig all              # every experiment, paper order
//	mutebench -fig fig14 -csv       # machine-readable output
//	mutebench -fig fig12 -json      # structured output for plotting tools
//	mutebench -fig fig12 -fm        # route audio through the full FM chain
//	mutebench -list                 # available experiment ids
//	mutebench -bench core -bench-json BENCH_core.json   # regenerate perf baseline
//	mutebench -bench core -bench-compare BENCH_core.json  # CI regression gate
//
// Experiment ids: fig12 fig13 fig14 fig15 fig16 fig17 fig18 fig19,
// lookahead, ablation-taps, ablation-fmsnr, ablation-nlms, and the
// beyond-the-paper extensions variants, mobility, contention, tracker,
// multisource, loss (cancellation vs packet loss on the forwarded
// reference, with FEC and concealment-freeze policies), and outage
// (cancellation vs scheduled relay outage duration, comparing naive,
// freeze, supervised degradation-ladder, and two-relay failover policies).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"mute/internal/bench"
	"mute/internal/experiments"
	"mute/internal/telemetry"
)

func main() {
	var (
		figID      = flag.String("fig", "fig12", "experiment id or 'all'")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		csv        = flag.Bool("csv", false, "emit CSV instead of tables")
		jsonOut    = flag.Bool("json", false, "emit JSON instead of tables")
		duration   = flag.Float64("duration", 0, "seconds of simulated audio per run (0 = default)")
		seed       = flag.Uint64("seed", 0, "simulation seed (0 = default)")
		useFM      = flag.Bool("fm", false, "route reference audio through the full FM chain")
		workers    = flag.Int("workers", 0, "experiment worker pool size (0 = one per CPU, 1 = sequential)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		telem      = flag.Bool("telemetry", false, "print the aggregated pipeline telemetry report after the run")
		traceOut   = flag.String("trace-out", "", "write per-stage JSONL trace (forces -workers 1 for a well-ordered stream)")
		debugAddr  = flag.String("debug-addr", "", "serve expvar (/debug/vars) and pprof on this address")
		benchSuite = flag.String("bench", "", "run a benchmark suite (core, figs, or fleet) instead of an experiment")
		benchJSON  = flag.String("bench-json", "", "write the benchmark report JSON to this file (default stdout)")
		benchCmp   = flag.String("bench-compare", "", "compare the benchmark run against this baseline report; exit 1 on regression")
		benchTol   = flag.Float64("bench-threshold", 0.2, "relative regression beyond which -bench-compare fails")
	)
	flag.Parse()

	if *benchSuite != "" {
		runBench(*benchSuite, *benchJSON, *benchCmp, *benchTol)
		return
	}

	if *list {
		fmt.Println("fig12 fig13 fig14 fig15 fig16 fig17 fig18 fig19 lookahead ablation-taps ablation-fmsnr ablation-nlms variants mobility contention tracker multisource loss outage drift fdaf mesh all")
		return
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC() // report live allocations, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}
	cfg := experiments.Config{
		Duration:  *duration,
		Seed:      *seed,
		UseFMLink: *useFM,
		Workers:   *workers,
	}
	// Observability is opt-in and result-neutral: the registry and trace
	// only observe the runs (TestTelemetryResultNeutral pins this down).
	var reg *telemetry.Registry
	if *telem || *debugAddr != "" {
		reg = telemetry.NewRegistry()
		cfg.Telemetry = reg
	}
	var tr *telemetry.Trace
	if *traceOut != "" {
		tr = telemetry.NewTrace()
		cfg.Trace = tr
		cfg.Workers = 1 // a single worker keeps the event stream well-ordered
	}
	if *debugAddr != "" {
		telemetry.PublishExpvar("mute", reg)
		// Dedicated mux, bound synchronously: a bad address fails the run
		// up front instead of printing from a goroutine mid-sweep.
		bound, err := telemetry.ServeDebug(*debugAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "mutebench: expvar/pprof on http://%s/debug/vars\n", bound)
	}
	var figs []*experiments.Figure
	if *figID == "all" {
		all, err := experiments.All(cfg)
		if err != nil {
			fatal(err)
		}
		figs = all
	} else {
		fn, ok := experiments.ByID(*figID)
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q (try -list)", *figID))
		}
		fig, err := fn(cfg)
		if err != nil {
			fatal(err)
		}
		figs = []*experiments.Figure{fig}
	}
	if *traceOut != "" {
		if err := tr.WriteFile(*traceOut); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "mutebench: wrote %d trace events to %s\n", tr.Len(), *traceOut)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(figs); err != nil {
			fatal(err)
		}
		if *telem {
			fmt.Fprint(os.Stderr, reg.Snapshot().Text())
		}
		return
	}
	for _, fig := range figs {
		if *csv {
			renderCSV(fig)
		} else {
			renderTable(fig)
		}
	}
	if *telem {
		fmt.Println("\n=== pipeline telemetry ===")
		fmt.Print(reg.Snapshot().Text())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mutebench:", err)
	os.Exit(1)
}

// runBench executes a benchmark suite, emits its JSON report, and — when a
// baseline is given — fails the process on calibrated regressions beyond
// the threshold. This is the regeneration path for the checked-in
// BENCH_core.json / BENCH_figs.json / BENCH_fleet.json perf-trajectory
// files and the CI gate
// that holds them.
func runBench(suite, jsonPath, comparePath string, threshold float64) {
	rep, err := bench.Run(suite)
	if err != nil {
		fatal(err)
	}
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	raw = append(raw, '\n')
	if jsonPath == "" {
		os.Stdout.Write(raw)
	} else if err := os.WriteFile(jsonPath, raw, 0o644); err != nil {
		fatal(err)
	}
	if comparePath == "" {
		return
	}
	baseline, err := bench.Load(comparePath)
	if err != nil {
		fatal(err)
	}
	problems := bench.Compare(rep, baseline, threshold)
	if len(problems) == 0 {
		fmt.Fprintf(os.Stderr, "mutebench: bench %s within %.0f%% of %s\n", suite, threshold*100, comparePath)
		return
	}
	for _, p := range problems {
		fmt.Fprintln(os.Stderr, "mutebench: regression:", p)
	}
	os.Exit(1)
}

// sharedX reports whether every series has the same X axis.
func sharedX(fig *experiments.Figure) bool {
	if len(fig.Series) < 2 {
		return true
	}
	first := fig.Series[0].X
	for _, s := range fig.Series[1:] {
		if len(s.X) != len(first) {
			return false
		}
		for i := range first {
			if s.X[i] != first[i] {
				return false
			}
		}
	}
	return true
}

func renderTable(fig *experiments.Figure) {
	fmt.Printf("\n=== %s: %s ===\n", fig.ID, fig.Title)
	if sharedX(fig) && len(fig.Series) > 0 {
		// Joint table: X column plus one column per series.
		fmt.Printf("%12s", fig.XLabel)
		for _, s := range fig.Series {
			fmt.Printf("  %20s", truncate(s.Name, 20))
		}
		fmt.Println()
		for i := range fig.Series[0].X {
			fmt.Printf("%12.1f", fig.Series[0].X[i])
			for _, s := range fig.Series {
				fmt.Printf("  %20.2f", s.Y[i])
			}
			fmt.Println()
		}
	} else {
		for _, s := range fig.Series {
			fmt.Printf("-- %s --\n", s.Name)
			fmt.Printf("%12s  %12s\n", fig.XLabel, fig.YLabel)
			for i := range s.X {
				fmt.Printf("%12.2f  %12.3f\n", s.X[i], s.Y[i])
			}
		}
	}
	for _, n := range fig.Notes {
		fmt.Println("note:", n)
	}
}

func renderCSV(fig *experiments.Figure) {
	if sharedX(fig) && len(fig.Series) > 0 {
		cols := []string{csvEscape(fig.XLabel)}
		for _, s := range fig.Series {
			cols = append(cols, csvEscape(s.Name))
		}
		fmt.Printf("# %s\n", fig.ID)
		fmt.Println(strings.Join(cols, ","))
		for i := range fig.Series[0].X {
			row := []string{fmt.Sprintf("%g", fig.Series[0].X[i])}
			for _, s := range fig.Series {
				row = append(row, fmt.Sprintf("%g", s.Y[i]))
			}
			fmt.Println(strings.Join(row, ","))
		}
		return
	}
	fmt.Printf("# %s\n", fig.ID)
	fmt.Println("series,x,y")
	for _, s := range fig.Series {
		for i := range s.X {
			fmt.Printf("%s,%g,%g\n", csvEscape(s.Name), s.X[i], s.Y[i])
		}
	}
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
