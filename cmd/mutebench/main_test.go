package main

import (
	"testing"

	"mute/internal/experiments"
)

func TestSharedX(t *testing.T) {
	same := &experiments.Figure{Series: []experiments.Series{
		{X: []float64{1, 2}}, {X: []float64{1, 2}},
	}}
	if !sharedX(same) {
		t.Error("identical axes should be shared")
	}
	diff := &experiments.Figure{Series: []experiments.Series{
		{X: []float64{1, 2}}, {X: []float64{1, 3}},
	}}
	if sharedX(diff) {
		t.Error("different axes should not be shared")
	}
	ragged := &experiments.Figure{Series: []experiments.Series{
		{X: []float64{1, 2}}, {X: []float64{1}},
	}}
	if sharedX(ragged) {
		t.Error("ragged axes should not be shared")
	}
	single := &experiments.Figure{Series: []experiments.Series{{X: []float64{1}}}}
	if !sharedX(single) {
		t.Error("single series is trivially shared")
	}
}

func TestCSVEscape(t *testing.T) {
	cases := map[string]string{
		"plain":      "plain",
		"with,comma": `"with,comma"`,
		`with"quote`: `"with""quote"`,
		"with\nnl":   "\"with\nnl\"",
	}
	for in, want := range cases {
		if got := csvEscape(in); got != want {
			t.Errorf("csvEscape(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestTruncate(t *testing.T) {
	if got := truncate("short", 10); got != "short" {
		t.Errorf("truncate short = %q", got)
	}
	if got := truncate("a-very-long-name", 8); len(got) > 10 { // rune may be multi-byte
		t.Errorf("truncate long = %q", got)
	}
}

func TestRenderersDoNotPanic(t *testing.T) {
	fig := &experiments.Figure{
		ID: "t", Title: "test", XLabel: "x", YLabel: "y",
		Series: []experiments.Series{
			{Name: "a", X: []float64{1, 2}, Y: []float64{3, 4}},
			{Name: "b", X: []float64{1, 2}, Y: []float64{5, 6}},
		},
		Notes: []string{"note"},
	}
	renderTable(fig)
	renderCSV(fig)
	mixed := &experiments.Figure{
		ID: "m", Series: []experiments.Series{
			{Name: "a", X: []float64{1}, Y: []float64{2}},
			{Name: "b", X: []float64{1, 2}, Y: []float64{3, 4}},
		},
	}
	renderTable(mixed)
	renderCSV(mixed)
}
