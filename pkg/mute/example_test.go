package mute_test

import (
	"fmt"

	"mute/pkg/mute"
)

// The simplest end-to-end use: simulate the Figure 1 office and report how
// much quieter the open-ear MUTE device makes it.
func ExampleRun() {
	noise := mute.WhiteNoise(1, 8000, 0.5)
	params := mute.DefaultParams(mute.DefaultScene(noise))
	params.Duration = 2 // keep the example fast; use >= 8 s for real numbers

	result, err := mute.Run(params, mute.MUTEHollow)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	report, err := mute.Summarize(result)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("lookahead %.1f ms, N=%d non-causal taps\n",
		report.LookaheadMs, report.NonCausalTaps)
	// Output:
	// lookahead 8.8 ms, N=32 non-causal taps
}

// Lookahead computes Equation 4: a relay 1 m closer to the source than the
// ear buys about 3 ms.
func ExampleLookahead() {
	source := mute.Point{X: 0, Y: 0, Z: 0}
	relay := mute.Point{X: 1, Y: 0, Z: 0}
	ear := mute.Point{X: 2, Y: 0, Z: 0}
	fmt.Printf("%.2f ms\n", mute.Lookahead(source, relay, ear)*1000)
	// Output:
	// 2.94 ms
}

// PlanBudget splits the available lookahead between the converter pipeline
// (Equation 3) and LANC's non-causal taps.
func ExamplePlanBudget() {
	budget, err := mute.PlanBudget(24, mute.PipelineDelays{ADC: 1, DSP: 1, DAC: 1, Speaker: 1})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("deadline met: %v, non-causal taps: %d\n", budget.DeadlineMet, budget.UsableTaps)
	// Output:
	// deadline met: true, non-causal taps: 20
}

// NewCanceller embeds LANC in a custom sample loop: push the wirelessly
// received reference, play the anti-noise, feed back the measured residual.
func ExampleNewCanceller() {
	lanc, err := mute.NewCanceller(mute.CancellerConfig{
		NonCausalTaps: 8,
		CausalTaps:    16,
		Mu:            0.2,
		Normalized:    true,
		SecondaryPath: []float64{0.8, 0.2},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	residual := 0.0
	for i := 0; i < 3; i++ {
		lanc.Adapt(residual)
		lanc.Push(0.5)       // newest forwarded sample x(t+N)
		_ = lanc.AntiNoise() // α(t), played at the speaker
		residual = 0.01      // measured at the error microphone
	}
	fmt.Println("taps:", lanc.NonCausalTaps(), "+", lanc.CausalTaps())
	// Output:
	// taps: 8 + 16
}
