package mute

import (
	"math"
	"path/filepath"
	"testing"
	"time"
)

func TestFacadeSimulationFlow(t *testing.T) {
	gen := WhiteNoise(1, 8000, 0.5)
	p := DefaultParams(DefaultScene(gen))
	p.Duration = 4
	r, err := Run(p, MUTEHollow)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Summarize(r)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scheme != "MUTE_Hollow" {
		t.Errorf("scheme = %q", rep.Scheme)
	}
	if rep.FullBandDB > 0 {
		t.Errorf("cancellation should not amplify: %.1f dB", rep.FullBandDB)
	}
	if rep.LookaheadMs < 5 || rep.LookaheadMs > 12 {
		t.Errorf("lookahead = %.1f ms, want ≈ 8.8", rep.LookaheadMs)
	}
	if rep.String() == "" {
		t.Error("report should render")
	}
	freqs, dB, err := Spectrum(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(freqs) != len(dB) || len(freqs) == 0 {
		t.Error("spectrum shape mismatch")
	}
}

func TestFacadeLookahead(t *testing.T) {
	// 1 m difference ≈ 2.94 ms (the paper's ≈3 ms example).
	la := Lookahead(Point{X: 0, Y: 0, Z: 0}, Point{X: 1, Y: 0, Z: 0}, Point{X: 2, Y: 0, Z: 0})
	if math.Abs(la-1.0/340) > 1e-6 {
		t.Errorf("lookahead = %g s", la)
	}
}

func TestFacadeGenerators(t *testing.T) {
	gens := []Generator{
		WhiteNoise(1, 8000, 0.5),
		MachineHum(2, 120, 8000, 0.5),
		MaleSpeech(3, 8000, 0.5),
		FemaleSpeech(4, 8000, 0.5),
		Music(5, 8000, 0.5),
		Construction(6, 8000, 0.5),
		Babble(7, 3, 8000, 0.5),
	}
	for i, g := range gens {
		if g.SampleRate() != 8000 {
			t.Errorf("generator %d rate mismatch", i)
		}
		var energy float64
		for k := 0; k < 16000; k++ {
			v := g.Next()
			energy += v * v
		}
		if energy == 0 {
			t.Errorf("generator %d produced silence", i)
		}
	}
}

func TestFacadeWAVRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "test.wav")
	in := make([]float64, 100)
	for i := range in {
		in[i] = math.Sin(float64(i) / 10)
	}
	if err := SaveWAV(path, in, 8000); err != nil {
		t.Fatal(err)
	}
	out, rate, err := LoadWAV(path)
	if err != nil {
		t.Fatal(err)
	}
	if rate != 8000 || len(out) != len(in) {
		t.Fatalf("round trip: rate=%d len=%d", rate, len(out))
	}
	if err := SaveWAV(filepath.Join(dir, "nodir", "x.wav"), in, 8000); err == nil {
		t.Error("save into missing dir should error")
	}
	if _, _, err := LoadWAV(filepath.Join(dir, "missing.wav")); err == nil {
		t.Error("load missing file should error")
	}
}

func TestFacadeCancellerEmbedding(t *testing.T) {
	c, err := NewCanceller(CancellerConfig{
		NonCausalTaps: 8,
		CausalTaps:    16,
		Mu:            0.2,
		Normalized:    true,
		SecondaryPath: []float64{0.8, 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		c.Push(0.5)
		_ = c.AntiNoise()
		c.Adapt(0.01)
	}
	b, err := PlanBudget(24, PipelineDelays{ADC: 1, DSP: 1, DAC: 1, Speaker: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !b.DeadlineMet || b.UsableTaps != 20 {
		t.Errorf("budget = %+v", b)
	}
}

func TestFacadeRelaySelection(t *testing.T) {
	local := make([]float64, 1024)
	lead := make([]float64, 1024)
	lag := make([]float64, 1024)
	g := WhiteNoise(9, 8000, 0.7)
	base := make([]float64, 1100)
	for i := range base {
		base[i] = g.Next()
	}
	copy(local, base[30:])
	copy(lead, base[60:])  // content advanced: leads local by 30
	copy(lag, base[:1024]) // content delayed: lags local by 30
	sel, err := SelectRelay([][]float64{lag, lead}, local, 100)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Best != 1 {
		t.Errorf("best relay = %d, want 1 (the leading one); reports %+v", sel.Best, sel.Reports)
	}
}

func TestFacadeStreaming(t *testing.T) {
	rx, err := NewReceiver("127.0.0.1:0", 32)
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	tx, err := NewSender(rx.Addr(), 80)
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()
	in := make([]float64, 160)
	for i := range in {
		in[i] = math.Sin(float64(i) / 5)
	}
	if err := tx.Send(in); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for rx.Buffered() < 2 && time.Now().Before(deadline) {
		if _, err := rx.Poll(20 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	out := make([]float64, 160)
	if got := rx.Pop(out); got < 150 {
		t.Errorf("delivered %d samples", got)
	}
}

func TestFacadeVariantsAndMobility(t *testing.T) {
	p := DefaultParams(DefaultScene(WhiteNoise(11, 8000, 0.5)))
	p.Duration = 3
	r, err := RunVariant(VariantParams{Base: p, Variant: SmartNoise})
	if err != nil {
		t.Fatal(err)
	}
	if r.LookaheadSamples <= 0 {
		t.Error("smart-noise lookahead should be positive")
	}
	p2 := DefaultParams(DefaultScene(WhiteNoise(11, 8000, 0.5)))
	p2.Duration = 3
	end := p2.Scene.EarPos
	end.Y += 0.3
	rm, err := RunMobile(MobilityParams{Base: p2, EarEnd: end})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Summarize(rm)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FullBandDB > 0 {
		t.Errorf("mobile run should not amplify: %.1f dB", rep.FullBandDB)
	}
	if _, err := RunVariant(VariantParams{Base: p, Variant: Variant(99)}); err == nil {
		t.Error("unknown variant should error")
	}
}

func TestFacadeFromSamples(t *testing.T) {
	data := make([]float64, 4800)
	for i := range data {
		data[i] = math.Sin(2 * math.Pi * 440 * float64(i) / 48000)
	}
	gen, err := FromSamples(data, 48000, 8000, true)
	if err != nil {
		t.Fatal(err)
	}
	if gen.SampleRate() != 8000 {
		t.Error("resampled generator rate mismatch")
	}
	var energy float64
	for i := 0; i < 1600; i++ {
		v := gen.Next()
		energy += v * v
	}
	if energy == 0 {
		t.Error("resampled source should produce sound")
	}
	if _, err := FromSamples(data, 0, 8000, true); err == nil {
		t.Error("zero source rate should error")
	}
}

func TestFacadeAmbienceGenerators(t *testing.T) {
	for name, g := range map[string]Generator{
		"traffic":      Traffic(1, 8000, 0.5, 12),
		"announcement": Announcement(2, 8000, 0.8),
	} {
		var energy float64
		for i := 0; i < 80000; i++ {
			v := g.Next()
			energy += v * v
		}
		if energy == 0 {
			t.Errorf("%s produced silence", name)
		}
	}
}
