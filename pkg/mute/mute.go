// Package mute is the public API of the MUTE reproduction — a
// lookahead-aware active noise cancellation system in which an IoT relay
// forwards ambient sound over a wireless link so the ear device hears the
// noise milliseconds before it arrives acoustically (Shen et al.,
// SIGCOMM 2018).
//
// The package offers three levels of entry:
//
//   - Scenario simulation: build a Scene (room, sources, relay, ear),
//     choose a Scheme, and Run it to obtain recordings and cancellation
//     reports. This is what the examples and the benchmark harness use.
//
//   - Algorithm embedding: NewCanceller exposes the LANC adaptive filter
//     directly for integration into custom sample loops, along with
//     lookahead budgeting (PlanBudget) and relay selection (SelectRelay).
//
//   - Live transport: Sender/Receiver stream timestamped audio frames
//     over UDP for split relay/ear deployments (see cmd/muterelay and
//     cmd/muteear).
package mute

import (
	"fmt"
	"os"
	"time"

	"mute/internal/acoustics"
	"mute/internal/audio"
	"mute/internal/core"
	"mute/internal/dsp"
	"mute/internal/graph"
	"mute/internal/headphone"
	"mute/internal/metrics"
	"mute/internal/relaysel"
	"mute/internal/rf"
	"mute/internal/sim"
	"mute/internal/stream"
	"mute/internal/supervisor"
	"mute/internal/telemetry"
)

// Geometry and scenario types.
type (
	// Point is a 3-D position in meters.
	Point = acoustics.Point
	// Room is a rectangular room with absorptive walls.
	Room = acoustics.Room
	// Scene is a physical experiment layout.
	Scene = sim.Scene
	// Source is a positioned sound source.
	Source = sim.Source
	// Params configures a simulation run.
	Params = sim.Params
	// Result holds a run's recordings and budget.
	Result = sim.Result
	// Scheme selects the cancellation system under test.
	Scheme = sim.Scheme
	// Generator produces a sample stream.
	Generator = audio.Generator
)

// The comparison schemes of the paper's evaluation.
const (
	// MUTEHollow is the open-ear MUTE device.
	MUTEHollow = sim.MUTEHollow
	// MUTEPassive is MUTE running inside a passive ear cup.
	MUTEPassive = sim.MUTEPassive
	// BoseActive is the conventional headphone's ANC contribution.
	BoseActive = sim.BoseActive
	// BoseOverall is the conventional headphone end to end.
	BoseOverall = sim.BoseOverall
	// PassiveOnly is the ear cup alone.
	PassiveOnly = sim.PassiveOnly
)

// DefaultRoom returns the furnished-office room model.
func DefaultRoom() Room { return acoustics.DefaultRoom() }

// DefaultScene builds the Figure 1 office layout around a noise generator.
func DefaultScene(gen Generator) Scene { return sim.DefaultScene(gen) }

// DefaultParams returns the standard evaluation parameters for a scene.
func DefaultParams(scene Scene) Params { return sim.DefaultParams(scene) }

// Run simulates a scheme and returns its recordings.
func Run(p Params, scheme Scheme) (*Result, error) { return sim.Run(p, scheme) }

// Lookahead returns the lookahead time in seconds that a relay at relayPos
// provides for a source heard at earPos (Equation 4 of the paper).
func Lookahead(source, relayPos, earPos Point) float64 {
	return acoustics.Lookahead(source, relayPos, earPos)
}

// Report summarizes a run for human consumption.
type Report struct {
	// Scheme names the simulated system.
	Scheme string
	// FullBandDB is the average cancellation over [50, 4000] Hz.
	FullBandDB float64
	// LowBandDB is the average over [50, 1000] Hz.
	LowBandDB float64
	// HighBandDB is the average over [1000, 4000] Hz.
	HighBandDB float64
	// LookaheadMs is the geometric lookahead in milliseconds.
	LookaheadMs float64
	// NonCausalTaps is the lookahead LANC spent on non-causal filtering.
	NonCausalTaps int
}

// Summarize derives a Report from a Result.
func Summarize(r *Result) (Report, error) {
	full, err := r.CancellationDB(50, 4000)
	if err != nil {
		return Report{}, err
	}
	low, err := r.CancellationDB(50, 1000)
	if err != nil {
		return Report{}, err
	}
	high, err := r.CancellationDB(1000, 4000)
	if err != nil {
		return Report{}, err
	}
	return Report{
		Scheme:        r.Scheme.String(),
		FullBandDB:    full,
		LowBandDB:     low,
		HighBandDB:    high,
		LookaheadMs:   float64(r.LookaheadSamples) / r.SampleRate * 1000,
		NonCausalTaps: r.UsedNonCausalTaps,
	}, nil
}

// String renders the report as a one-line summary.
func (rep Report) String() string {
	return fmt.Sprintf("%-13s full %6.1f dB | <1 kHz %6.1f dB | >1 kHz %6.1f dB | lookahead %.1f ms (N=%d)",
		rep.Scheme, rep.FullBandDB, rep.LowBandDB, rep.HighBandDB, rep.LookaheadMs, rep.NonCausalTaps)
}

// Spectrum computes the cancellation-vs-frequency curve of a run (the
// paper's Figure 12/14 y-axis) from the steady-state recordings.
func Spectrum(r *Result) (freqs, dB []float64, err error) {
	cs, err := metrics.NewCancellationSpectrum(
		sim.SteadyState(r.Open), sim.SteadyState(r.On), r.SampleRate, 1024)
	if err != nil {
		return nil, nil, err
	}
	return cs.Freqs, cs.DB, nil
}

// SaveWAV writes samples as a 16-bit mono WAV file.
func SaveWAV(path string, samples []float64, sampleRate int) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("mute: create %s: %w", path, err)
	}
	defer f.Close()
	if err := audio.WriteWAV(f, samples, sampleRate); err != nil {
		return err
	}
	return f.Close()
}

// LoadWAV reads a 16-bit PCM WAV file into mono samples.
func LoadWAV(path string) ([]float64, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("mute: open %s: %w", path, err)
	}
	defer f.Close()
	return audio.ReadWAV(f)
}

// --- Generators -------------------------------------------------------------

// WhiteNoise returns the wide-band unpredictable test signal of Figure 12.
func WhiteNoise(seed uint64, sampleRate, amp float64) Generator {
	return audio.NewWhiteNoise(seed, sampleRate, amp)
}

// MachineHum returns periodic machine noise (fundamental + harmonics).
func MachineHum(seed uint64, fundamentalHz, sampleRate, amp float64) Generator {
	return audio.NewMachineHum(seed, fundamentalHz, sampleRate, amp, 8)
}

// MaleSpeech returns an intermittent male talker.
func MaleSpeech(seed uint64, sampleRate, amp float64) Generator {
	return audio.NewSpeech(seed, audio.MaleVoice, sampleRate, amp)
}

// FemaleSpeech returns an intermittent female talker.
func FemaleSpeech(seed uint64, sampleRate, amp float64) Generator {
	return audio.NewSpeech(seed, audio.FemaleVoice, sampleRate, amp)
}

// Music returns a melodic wide-band source.
func Music(seed uint64, sampleRate, amp float64) Generator {
	return audio.NewMusic(seed, sampleRate, amp, 3)
}

// Construction returns impulsive construction-site noise.
func Construction(seed uint64, sampleRate, amp float64) Generator {
	return audio.NewConstructionNoise(seed, sampleRate, amp)
}

// Babble returns overlapping corridor conversation.
func Babble(seed uint64, talkers int, sampleRate, amp float64) Generator {
	return audio.NewBabble(seed, talkers, sampleRate, amp)
}

// Traffic returns road noise: engine rumble plus vehicle pass-bys.
// density is vehicles per minute.
func Traffic(seed uint64, sampleRate, amp, density float64) Generator {
	return audio.NewTraffic(seed, sampleRate, amp, density)
}

// Announcement returns public-address announcements: chime, sentence,
// long silence — the airport scenario of the paper's introduction.
func Announcement(seed uint64, sampleRate, amp float64) Generator {
	return audio.NewAnnouncement(seed, sampleRate, amp)
}

// FromSamples wraps recorded samples (e.g. from LoadWAV) as a looping
// noise source, resampling from srcRate to dstRate when they differ.
func FromSamples(data []float64, srcRate, dstRate float64, loop bool) (Generator, error) {
	resampled, err := dsp.Resample(data, srcRate, dstRate)
	if err != nil {
		return nil, err
	}
	return audio.NewSliceSource(resampled, dstRate, loop), nil
}

// --- Architectural variants and mobility -------------------------------------

// Variant selects one of the paper's Section 4.3 architectures.
type Variant = sim.Variant

// The architectural variants of Figure 10.
const (
	// WallRelay is the evaluated basic architecture.
	WallRelay = sim.WallRelay
	// Tabletop hosts the DSP at a portable relay (Figure 10(a)).
	Tabletop = sim.Tabletop
	// SmartNoise attaches the relay to the noise source (Figure 10(c)).
	SmartNoise = sim.SmartNoise
)

// VariantParams configures a variant run.
type VariantParams = sim.VariantParams

// RunVariant simulates an architectural variant with the MUTE algorithm.
func RunVariant(vp VariantParams) (*Result, error) { return sim.RunVariant(vp) }

// MobilityParams configures a moving-ear run.
type MobilityParams = sim.MobilityParams

// RunMobile simulates MUTE with the ear device drifting along a segment,
// exercising channel tracking (the head-mobility concern of Section 6).
func RunMobile(mp MobilityParams) (*Result, error) { return sim.RunMobile(mp) }

// --- Algorithm embedding ----------------------------------------------------

// CancellerConfig configures an embedded LANC instance.
type CancellerConfig = core.Config

// Canceller is the LANC adaptive filter for custom sample loops: call
// Push with each wirelessly received reference sample, play AntiNoise
// through your speaker, and feed the measured residual to Adapt. When the
// reference arrives over a lossy packet link, set CancellerConfig.LossAware
// and use PushMasked/StepMasked with the jitter buffer's concealment mask
// (Receiver.PopMask) so adaptation freezes over zero-filled gaps instead
// of corrupting the filter.
type Canceller = core.LANC

// NewCanceller creates an embedded LANC instance.
func NewCanceller(cfg CancellerConfig) (*Canceller, error) { return core.New(cfg) }

// PipelineDelays models converter/DSP/speaker latency (Equation 3).
type PipelineDelays = core.PipelineDelays

// LookaheadBudget splits available lookahead between the processing
// pipeline and non-causal filter taps.
type LookaheadBudget = core.Budget

// PlanBudget computes the lookahead budget for a deployment.
func PlanBudget(lookaheadSamples int, p PipelineDelays) (LookaheadBudget, error) {
	return core.NewBudget(lookaheadSamples, p)
}

// --- Relay selection ----------------------------------------------------------

// RelaySelection is the outcome of a GCC-PHAT relay-selection round.
type RelaySelection = relaysel.Selection

// SelectRelay correlates each relay's forwarded stream against the locally
// heard signal and picks the relay with the largest positive lookahead, or
// Best == -1 when every relay lags (Section 4.2).
func SelectRelay(forwarded [][]float64, local []float64, maxLag int) (*RelaySelection, error) {
	return relaysel.SelectRelay(forwarded, local, maxLag, 1, 0.05)
}

// --- Live transport -----------------------------------------------------------

// Sender streams timestamped audio frames to a UDP peer (the relay side).
type Sender = stream.Sender

// Receiver reassembles streamed frames through a jitter buffer (the ear
// side).
type Receiver = stream.Receiver

// NewSender dials a receiver address with the given frame size in samples.
func NewSender(addr string, frameSamples int) (*Sender, error) {
	return stream.NewSender(addr, frameSamples)
}

// NewReceiver listens on addr with the given jitter-buffer depth.
func NewReceiver(addr string, depth int) (*Receiver, error) {
	return stream.NewReceiver(addr, depth)
}

// --- Fault injection and loss-aware transport ---------------------------------

// LossParams configures the deterministic link fault injector: i.i.d. or
// Gilbert–Elliott burst loss, duplication, reordering, and per-frame
// latency jitter.
type LossParams = stream.LossParams

// LinkStats counts what a lossy link did to the offered frames.
type LinkStats = stream.LinkStats

// LossyLink is a seeded link impairment model. Install it on a Sender via
// Impair for live fault injection, or drive it in-process with Transfer.
type LossyLink = stream.LossyLink

// NewLossyLink builds a fault injector from validated parameters.
func NewLossyLink(p LossParams) (*LossyLink, error) { return stream.NewLossyLink(p) }

// LossTransport routes a simulated run's forwarded reference through the
// packetized stream layer (framing, lossy link, optional FEC, jitter
// buffer); set Params.LossTransport to enable it.
type LossTransport = sim.LossTransport

// LossTransportStats aggregates the transport counters of such a run.
type LossTransportStats = sim.LossTransportStats

// PacketizeReference pushes a reference signal through the packetized
// transport and returns the receiver's reconstruction plus its
// concealment mask.
func PacketizeReference(ref []float64, lt LossTransport) ([]float64, []bool, LossTransportStats, error) {
	return sim.PacketizeReference(ref, lt)
}

// --- Clock-drift resilience -----------------------------------------------------

// SkewStep schedules an instantaneous oscillator frequency change — a
// temperature shock, a PLL re-lock — at a relay-clock sample index.
type SkewStep = stream.SkewStep

// SkewParams configures the skewed-oscillator fault injector: a constant
// relay-vs-ear frequency offset in ppm, an optional seeded random-walk
// wander, and scheduled frequency steps. The zero value is disabled — an
// exact identity, so pipelines built on it degenerate to the unskewed
// path bit for bit.
type SkewParams = stream.SkewParams

// ClockSkew maps relay-clock sample indices to ear-clock positions under
// the configured skew. Set LossTransport.Skew to inject drift into a
// simulated run, or pace a live Sender by its Pos (see cmd/muterelay's
// -skew-ppm flag).
type ClockSkew = stream.ClockSkew

// NewClockSkew builds the skew injector from validated parameters.
func NewClockSkew(p SkewParams) (*ClockSkew, error) { return stream.NewClockSkew(p) }

// DriftConfig tunes a DriftEstimator; the zero value selects defaults.
type DriftConfig = stream.DriftConfig

// DriftEstimator measures the relay-vs-ear clock skew from the delivered
// stream itself: each frame contributes one (timestamp, arrival) pair and
// the robust slope of that line is 1 + skew. Feed it from
// Receiver.SetFrameObserver and steer a VariRateResampler with PPM (see
// cmd/muteear's -drift-correct flag).
type DriftEstimator = stream.DriftEstimator

// NewDriftEstimator creates a drift estimator with defaults filled.
func NewDriftEstimator(cfg DriftConfig) (*DriftEstimator, error) {
	return stream.NewDriftEstimator(cfg)
}

// VariRateResampler is the streaming continuous-rate fractional resampler
// that slaves the received reference to the ear clock: Push jitter-buffer
// output (with its concealment flag), SetRate to 1 + PPM·1e-6 from the
// estimator, Pop consumer-clock samples. At rate exactly 1 it is a
// bit-exact passthrough.
type VariRateResampler = dsp.VariRateResampler

// NewVariRateResampler creates a resampler at unity rate.
func NewVariRateResampler() *VariRateResampler { return dsp.NewVariRateResampler() }

// DriftWindow is the drift stage's per-playout-window telemetry in a
// simulated run.
type DriftWindow = sim.DriftWindow

// DriftReport summarizes the clock-drift stage of a simulated transport
// run (LossTransportStats.Drift): injected vs estimated skew, resampler
// rate trajectory, and suspected oscillator steps.
type DriftReport = sim.DriftReport

// --- Relay-outage resilience --------------------------------------------------

// Outage schedules a relay blackout on a LossyLink: every frame offered
// during [StartSlot, StartSlot+DurationSlots) is dropped, on top of the
// link's stochastic impairments. Set LossParams.Outages to script relay
// reboots deterministically.
type Outage = stream.Outage

// Fade schedules a deep-fade SNR ramp in the FM channel: a trapezoid
// attenuation (ramp in, hold, ramp out) in dB over baseband samples. Set
// ChannelParams.Fades to script analog-link fades deterministically.
type Fade = rf.Fade

// FMChannel configures the analog FM forwarding channel (SNR, CFO,
// multipath, scheduled fades).
type FMChannel = rf.ChannelParams

// LocalCanceller is the conventional causal feedforward canceller
// (internal/headphone): the Bose-class device the paper compares against,
// and the degradation ladder's FALLBACK rung — it needs no wireless leg.
type LocalCanceller = headphone.ANC

// LocalCancellerConfig parameterizes a LocalCanceller.
type LocalCancellerConfig = headphone.Config

// DefaultLocalCancellerConfig returns the standard local-canceller tuning
// for a sample rate and estimated secondary path.
func DefaultLocalCancellerConfig(sampleRate float64, secondaryPath []float64) LocalCancellerConfig {
	return headphone.DefaultConfig(sampleRate, secondaryPath)
}

// NewLocalCanceller builds a causal fallback canceller.
func NewLocalCanceller(cfg LocalCancellerConfig) (*LocalCanceller, error) {
	return headphone.NewANC(cfg)
}

// Supervisor drives a Canceller through the relay-outage degradation
// ladder: LANC → DEGRADED (shrunken non-causal window) → FALLBACK (local
// causal canceller, warm-started from LANC's causal taps) → PASSTHROUGH,
// with dwell, hysteresis, crossfades, and exponential-backoff
// reacquisition probes. In simulation, set Params.Supervise instead.
type Supervisor = supervisor.Supervisor

// SupervisorConfig tunes the ladder's thresholds, dwells, and crossfade.
type SupervisorConfig = supervisor.Config

// SupervisorState is a ladder rung.
type SupervisorState = supervisor.State

// The ladder rungs, healthiest first.
const (
	StateLANC        = supervisor.StateLANC
	StateDegraded    = supervisor.StateDegraded
	StateFallback    = supervisor.StateFallback
	StatePassthrough = supervisor.StatePassthrough
)

// SupervisorTransition is one recorded ladder move.
type SupervisorTransition = supervisor.Transition

// SupervisorReport summarizes a supervised run: transitions,
// time-in-state, probe and warm-start counts.
type SupervisorReport = supervisor.Report

// DefaultSupervisorConfig returns the standard ladder tuning.
func DefaultSupervisorConfig() SupervisorConfig { return supervisor.DefaultConfig() }

// NewSupervisor wraps a canceller and its local fallback in the ladder.
func NewSupervisor(cfg SupervisorConfig, lanc *Canceller, fallback *LocalCanceller) (*Supervisor, error) {
	return supervisor.New(cfg, lanc, fallback)
}

// RelayTracker re-runs GCC-PHAT relay selection periodically over live
// streams (Section 4.2's mobility story).
type RelayTracker = relaysel.Tracker

// RelayTrackerConfig parameterizes a RelayTracker.
type RelayTrackerConfig = relaysel.TrackerConfig

// NewRelayTracker builds a periodic relay re-selector.
func NewRelayTracker(cfg RelayTrackerConfig) (*RelayTracker, error) {
	return relaysel.NewTracker(cfg)
}

// Failover layers per-relay link health over the tracker's acoustic
// preference: the acoustically best relay feeds the canceller while its
// link is healthy, a healthier alternative takes over when it dies, and
// the association returns once the preferred link recovers.
type Failover = supervisor.Failover

// FailoverConfig tunes the failover's health thresholds and dwell.
type FailoverConfig = supervisor.FailoverConfig

// NewFailover wraps a tracker (nil = relay 0 is the standing preference).
func NewFailover(cfg FailoverConfig, tracker *RelayTracker) (*Failover, error) {
	return supervisor.NewFailover(cfg, tracker)
}

// --- Unified pipeline graph -----------------------------------------------------

// The cancellation pipeline — reference source → drift control →
// supervisor/LANC (or BlockFDAF) → secondary chain → residual metering —
// is wired once, in the internal streaming-graph package, and shared by
// the simulator and the live CLIs. Embedders bind sources and controls
// to BuildPipeline instead of hand-wiring stages (see DESIGN.md's
// "Streaming graph" section).
type (
	// Pipeline is a built cancellation graph: drive it with ProcessBlock
	// or Run, read Meters/Samples and the planned Budget/Spend back.
	Pipeline = graph.Pipeline
	// PipelineConfig wires one pipeline; Reference, Ambient, SecondaryIR
	// and the lookahead geometry are the required bindings.
	PipelineConfig = graph.Config
	// PipelineCancellerParams is the canceller-policy slice of the
	// configuration.
	PipelineCancellerParams = graph.CancellerParams
	// PipelineFDAFParams selects the block frequency-domain canceller.
	PipelineFDAFParams = graph.FDAFParams
	// SampleSource is a pull-scheduled reference input (samples + mask).
	SampleSource = graph.SampleSource
	// AmbientLeg yields the coincident ambient sound per reference sample.
	AmbientLeg = graph.Ambient
	// DriftControl steers adaptation holds and supervisor drift reports.
	DriftControl = graph.DriftControl
	// ReceiverSource adapts a jitter-buffered Receiver to a SampleSource.
	ReceiverSource = graph.ReceiverSource
	// DriftSource slaves a SampleSource to the local clock through a
	// DriftEstimator-steered VariRateResampler.
	DriftSource = graph.DriftSource
	// DerivedAmbient synthesizes the acoustic leg from the delayed
	// reference (the live demo's binding).
	DerivedAmbient = graph.DerivedAmbient
	// LiveDrift reports an online estimator to the supervisor per block.
	LiveDrift = graph.LiveDrift
	// SliceSource serves a pre-rendered reference stream from memory.
	SliceSource = graph.SliceSource
	// SliceAmbient serves pre-rendered acoustics from memory.
	SliceAmbient = graph.SliceAmbient
)

// BuildPipeline plans the lookahead budget and assembles the unified
// cancellation pipeline.
func BuildPipeline(cfg PipelineConfig) (*Pipeline, error) { return graph.Build(cfg) }

// BlockDeadline returns the exact wall-clock boundary of processing
// block n (1-based) for a frame-sample block loop started at start with
// integer sample rate fs — computed in integer arithmetic so no
// truncation skew accumulates between the block clock and the sample
// clock.
func BlockDeadline(start time.Time, n, frame, fs int64) time.Time {
	return graph.BlockDeadline(start, n, frame, fs)
}

// ServeDebug binds addr synchronously and serves expvar (/debug/vars)
// and pprof (/debug/pprof/) on a dedicated mux in the background,
// returning the bound address. Pair with PublishTelemetry to expose a
// registry.
func ServeDebug(addr string) (string, error) { return telemetry.ServeDebug(addr) }

// --- Observability ------------------------------------------------------------

// Pipeline observability (see OBSERVABILITY.md): a Telemetry registry
// aggregates counters/gauges/histograms across a run or sweep, a Trace
// records per-stage events on the sample clock, and a BudgetReport breaks
// the lookahead budget down stage by stage. Attaching either to a run is
// result-neutral — the pipeline only reports state into them and never
// branches on them.
type (
	// Telemetry is a concurrency-safe metrics registry. Set
	// Params.Telemetry (or experiments.Config.Telemetry) to aggregate a
	// run's pipeline counters; read it back with Snapshot.
	Telemetry = telemetry.Registry
	// TelemetrySnapshot is a point-in-time copy of a registry's metrics.
	TelemetrySnapshot = telemetry.Snapshot
	// Trace is an in-memory per-stage event recorder. Set Params.Trace to
	// capture capture/link/stream/lookahead/lanc/residual events keyed by
	// sample time; serialize with its WriteFile/WriteJSONL methods.
	Trace = telemetry.Trace
	// TraceEvent is one recorded stage event.
	TraceEvent = telemetry.Event
	// BudgetReport itemizes lookahead spend (ms per stage); Result.BudgetSpend
	// carries one for every traced simulation run.
	BudgetReport = telemetry.BudgetReport
	// HistogramOpts configures a registry histogram's log-spaced buckets.
	HistogramOpts = telemetry.HistogramOpts
)

// Trace stage labels, in pipeline order.
const (
	StageCapture   = telemetry.StageCapture
	StageLink      = telemetry.StageLink
	StageStream    = telemetry.StageStream
	StageLookahead = telemetry.StageLookahead
	StageLANC      = telemetry.StageLANC
	StageResidual  = telemetry.StageResidual
	StageBudget    = telemetry.StageBudget
	StageDrift     = telemetry.StageDrift
)

// NewTelemetry creates an empty metrics registry.
func NewTelemetry() *Telemetry { return telemetry.NewRegistry() }

// NewTrace creates an empty stage-event trace.
func NewTrace() *Trace { return telemetry.NewTrace() }

// NewBudgetReport starts a lookahead budget breakdown for a deployment.
func NewBudgetReport(sampleRate float64, lookaheadSamples int) *BudgetReport {
	return telemetry.NewBudgetReport(sampleRate, lookaheadSamples)
}

// PublishTelemetry exposes a registry as an expvar variable, so an HTTP
// debug endpoint (/debug/vars) serves live snapshots.
func PublishTelemetry(name string, r *Telemetry) { telemetry.PublishExpvar(name, r) }

// ReadTrace loads a JSONL trace written by Trace.WriteFile.
func ReadTrace(path string) ([]TraceEvent, error) { return telemetry.ReadFile(path) }
